"""Ablations of TraceBack's design choices.

The paper motivates several mechanisms by their cost/benefit; each is
isolated here by toggling it and measuring the same workload:

* **path-bit budget** (§2.1): fewer bits per record force more DAGs and
  more heavyweight probes — the "unnecessarily voluminous" one-word-per-
  block strawman is the limit case.  More bits amortize better.
* **implied-block elision** (§2.1, "blocks that end in unconditional
  branches do not require lightweight probes"): turning it off inserts
  probes in implied blocks; overhead rises for nothing.
* **sub-buffering** (§3.2): "imposes a runtime penalty because of the
  more frequent callbacks to the runtime and the clearing of the next
  sub-buffer" — finer sub-buffers cost more wraps.
* **timestamp probes** (§3.5): the price of cross-thread ordering.
"""

import pytest

from repro.instrument import InstrumentConfig, instrument_module
from repro.lang.minic import compile_source
from repro.runtime import RuntimeConfig
from repro.workloads.harness import format_table, run_once
from repro.workloads.specint import benchmark_named

WORKLOAD = benchmark_named("vpr").source  # branchy grid loops


def _measure(
    instrument_config: InstrumentConfig,
    runtime_config: RuntimeConfig | None = None,
):
    base = run_once(compile_source(WORKLOAD, "w"))
    result = instrument_module(compile_source(WORKLOAD, "w"), instrument_config)
    traced = run_once(
        result.module, with_runtime=True, runtime_config=runtime_config
    )
    assert traced.output == base.output
    return base, traced, result.stats


def test_path_bit_budget_ablation(report, benchmark):
    rows = []
    ratios = {}
    for bits in (1, 3, 11):
        base, traced, stats = _measure(InstrumentConfig(path_bits=bits))
        ratio = traced.cycles / base.cycles
        ratios[bits] = ratio
        rows.append((f"{bits} path bits", stats.dags, stats.header_probes,
                     stats.light_probes, f"{ratio:.2f}"))
    table = format_table(
        rows,
        headers=["Budget", "DAGs", "heavy", "light", "Ratio"],
        title="Ablation — path-bit budget (fewer bits => more DAG headers)",
    )
    report.append(table)
    print("\n" + table)
    # Fewer bits => more heavyweight probes => more overhead.
    assert ratios[1] >= ratios[3] >= ratios[11]
    assert ratios[1] > ratios[11]

    benchmark.pedantic(
        lambda: _measure(InstrumentConfig(path_bits=11)),
        iterations=1, rounds=1,
    )


def test_implied_block_elision_ablation(report, benchmark):
    # Isolate the knob on a function with genuine implied blocks: an
    # unconditional chain threaded through out-of-line layout (the shape
    # optimizing compilers produce for cold paths).
    from repro.analysis import build_all_cfgs
    from repro.instrument import tile
    from repro.isa import assemble

    module = assemble(
        """
        .entry main
        .func main
          li r0, 5
          bz r0, Lcold
        Lhot:
          addi r1, r1, 1
          br Lstep2
        Lcold:
          li r1, 0
          halt
        Lstep2:
          addi r1, r1, 2      ; single pred (Lhot), unconditional: implied
          br Lstep3
        Lstep3:
          addi r1, r1, 3      ; implied again
          mov r0, r1
          halt
        .endfunc
        """
    )
    with_elision = without = 0
    for cfg in build_all_cfgs(module).values():
        plan_on = tile(cfg, elide_implied=True)
        plan_off = tile(cfg, elide_implied=False)
        with_elision += sum(
            1 for p in plan_on.block_probe.values() if p[0] == "light"
        )
        without += sum(
            1 for p in plan_off.block_probe.values() if p[0] == "light"
        )
    rows = [
        ("elision on", with_elision),
        ("elision off", without),
    ]
    table = format_table(
        rows, headers=["Variant", "lightweight probes"],
        title="Ablation — implied-block probe elision (§2.1)",
    )
    report.append(table)
    print("\n" + table)
    assert without > with_elision

    benchmark.pedantic(lambda: None, iterations=1, rounds=1)


def test_sub_buffering_cost_ablation(report, benchmark):
    """Same total buffer memory, different sub-buffer granularity: finer
    sub-buffers mean more runtime callbacks and more zeroing (§3.2)."""
    rows = []
    ratios = {}
    total_words = 512
    for subs in (2, 16):
        config = RuntimeConfig(
            sub_buffers=subs, sub_buffer_words=total_words // subs,
            main_buffers=1,
        )
        base, traced, _ = _measure(InstrumentConfig(), config)
        ratio = traced.cycles / base.cycles
        ratios[subs] = ratio
        rows.append((f"{subs} sub-buffers x {total_words // subs} words",
                     f"{ratio:.3f}"))
    table = format_table(
        rows, headers=["Layout", "Ratio"],
        title="Ablation — sub-buffering granularity (§3.2 runtime penalty)",
    )
    report.append(table)
    print("\n" + table)
    assert ratios[16] > ratios[2]

    benchmark.pedantic(lambda: None, iterations=1, rounds=1)


def test_timestamp_probe_cost_ablation(report, benchmark):
    """Timestamp records at sync/OS artifacts buy cross-thread ordering
    for a small cost (§3.5)."""
    src = """
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 300; i = i + 1) {
        lock(1);
        acc = acc + i;
        unlock(1);
    }
    print_int(acc);
    return 0;
}
"""
    base = run_once(compile_source(src, "w"))
    result = instrument_module(compile_source(src, "w"))
    on = run_once(result.module, with_runtime=True,
                  runtime_config=RuntimeConfig(timestamp_syscalls=True))
    off = run_once(result.module, with_runtime=True,
                   runtime_config=RuntimeConfig(timestamp_syscalls=False))
    rows = [
        ("timestamps on", f"{on.cycles / base.cycles:.3f}"),
        ("timestamps off", f"{off.cycles / base.cycles:.3f}"),
    ]
    table = format_table(
        rows, headers=["Variant", "Ratio"],
        title="Ablation — timestamp probes at sync points (§3.5)",
    )
    report.append(table)
    print("\n" + table)
    assert on.cycles >= off.cycles
    assert on.output == off.output == base.output

    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
