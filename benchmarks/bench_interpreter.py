"""Interpreter engine benchmark: predecoded fast dispatch vs reference.

Measures guest instructions per second for both TBVM engines on a
representative slice of the specint workload suite and records the
result in ``BENCH_interpreter.json`` at the repo root.  The fast engine
(:mod:`repro.vm.dispatch`) exists to make the simulation usable at
paper-scale workloads; this benchmark holds it to its contract:

* at least a 2x geometric-mean speedup over ``Machine.step()``;
* identical program output and cycle counts (the differential suite in
  ``tests/vm/test_differential.py`` checks full state; this cross-checks
  the summary numbers on the real workloads).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_interpreter.py

or as part of the slow pytest lane (``pytest -m slow benchmarks/``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import geometric_mean

from repro.lang.minic import compile_source
from repro.workloads.harness import format_table, run_once
from repro.workloads.specint import benchmark_named

SCHEMA = "tbvm-interpreter-bench/1"

#: A spread of workload shapes: tight integer loops (gzip, mcf), pointer
#: chasing (parser), branchy search (crafty), and call-heavy (gap).
WORKLOADS = ["gzip", "mcf", "parser", "crafty", "gap"]

#: Best-of-N wall-clock to damp scheduler noise.
REPEATS = 3

MIN_GEO_MEAN_SPEEDUP = 2.0

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_interpreter.json"


def _measure(name: str, engine: str) -> dict:
    """Best-of-``REPEATS`` run of one workload on one engine."""
    bench = benchmark_named(name)
    best = None
    for _ in range(REPEATS):
        module = compile_source(bench.source, name)
        start = time.perf_counter()
        outcome = run_once(module, engine=engine)
        seconds = time.perf_counter() - start
        if best is None or seconds < best["seconds"]:
            best = {
                "seconds": seconds,
                "instructions": outcome.instructions,
                "cycles": outcome.cycles,
                "output": outcome.output,
            }
    best["ips"] = best["instructions"] / best["seconds"]
    return best


def run_benchmark() -> dict:
    """Measure every workload under both engines; write and return the
    report."""
    rows = []
    for name in WORKLOADS:
        reference = _measure(name, "reference")
        fast = _measure(name, "fast")
        # Equivalence cross-check: same work, same result.
        assert fast["output"] == reference["output"], name
        assert fast["cycles"] == reference["cycles"], name
        assert fast["instructions"] == reference["instructions"], name
        rows.append(
            {
                "name": name,
                "instructions": fast["instructions"],
                "reference": {
                    "seconds": round(reference["seconds"], 4),
                    "ips": round(reference["ips"]),
                },
                "fast": {
                    "seconds": round(fast["seconds"], 4),
                    "ips": round(fast["ips"]),
                },
                "speedup": round(fast["ips"] / reference["ips"], 3),
            }
        )

    report = {
        "schema": SCHEMA,
        "workloads": rows,
        "geo_mean_speedup": round(
            geometric_mean([row["speedup"] for row in rows]), 3
        ),
    }
    # Other benchmarks (bench_replay) keep their own sections in the
    # same file; carry them over rather than clobbering.
    try:
        previous = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        previous = {}
    for key, value in previous.items():
        report.setdefault(key, value)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _render(report: dict) -> str:
    rows = [
        (
            row["name"],
            row["instructions"],
            f"{row['reference']['ips']:,}",
            f"{row['fast']['ips']:,}",
            f"{row['speedup']:.2f}x",
        )
        for row in report["workloads"]
    ]
    rows.append(
        ("geo mean", "", "", "", f"{report['geo_mean_speedup']:.2f}x")
    )
    return format_table(
        rows,
        headers=["workload", "instructions", "ref ips", "fast ips", "speedup"],
        title="Interpreter engines: instructions/second",
    )


def test_fast_engine_speedup(report):
    result = run_benchmark()
    report.append(_render(result))
    assert result["geo_mean_speedup"] >= MIN_GEO_MEAN_SPEEDUP, (
        f"fast engine only {result['geo_mean_speedup']:.2f}x over reference"
    )


if __name__ == "__main__":
    print(_render(run_benchmark()))
