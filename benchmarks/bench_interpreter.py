"""Interpreter engine benchmark: all three TBVM tiers + trace decode.

Measures guest instructions per second for every engine tier on a
representative slice of the specint workload suite, plus trace-record
decode throughput (scalar oracle vs the vectorized bulk scanners), and
records the results in ``BENCH_interpreter.json`` at the repo root.

The tiers exist to make the simulation usable at paper-scale workloads;
this benchmark holds them to their contracts:

* ``fast`` (tier 2, predecoded closures): >= 2x geometric-mean speedup
  over ``Machine.step()``;
* ``block`` (tier 3, fused basic-block units, :mod:`repro.vm.blocks`):
  >= 4x geometric-mean speedup in the in-test floor (the recorded
  numbers run >= 5x; the floor leaves noise headroom on busy CI boxes);
* bulk decode (:func:`repro.runtime.records.read_forward_bulk` and the
  salvage resync scanner): >= 3x the scalar oracle's word throughput;
* identical program output and cycle counts across tiers (the
  differential suite in ``tests/vm/test_differential.py`` checks full
  state; this cross-checks the summary numbers on the real workloads).

Results keep a bounded ``history`` array (BENCH_fleet style)::

    PYTHONPATH=src python benchmarks/bench_interpreter.py          # measure
    PYTHONPATH=src python benchmarks/bench_interpreter.py --check  # guard

``--check`` compares the two most recent history entries and fails on a
>25% regression in block-engine geo-mean speedup or bulk-decode
speedup; fewer than two entries is not an error.  The ``replay``
section maintained by ``bench_replay.py`` is carried over untouched.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from statistics import geometric_mean

from repro.lang.minic import compile_source
from repro.runtime.records import (
    _DAG_CACHE,
    DagRecord,
    ExtKind,
    ExtRecord,
    read_forward,
    read_forward_bulk,
)
from repro.workloads.harness import format_table, run_once
from repro.workloads.specint import benchmark_named

SCHEMA = "tbvm-interpreter-bench/2"

#: Engine tiers, slowest first; speedups are relative to the first.
TIERS = ("reference", "fast", "block")

#: A spread of workload shapes: tight integer loops (gzip, mcf), pointer
#: chasing (parser), branchy search (crafty), and call-heavy (gap).
WORKLOADS = ["gzip", "mcf", "parser", "crafty", "gap"]

#: Best-of-N wall-clock to damp scheduler noise.
REPEATS = 3

#: In-test floors (geometric mean over WORKLOADS).  Conservative vs the
#: recorded numbers so a noisy box doesn't flake the slow lane; the
#: ``--check`` history guard watches the recorded numbers themselves.
MIN_FAST_GEO_MEAN_SPEEDUP = 2.0
MIN_BLOCK_GEO_MEAN_SPEEDUP = 4.0
MIN_DECODE_SPEEDUP = 3.0

#: ``--check`` tolerance between the two most recent history entries.
REGRESSION_TOLERANCE = 0.25

HISTORY_LIMIT = 20

#: Decode subject size (words).  Mostly single-word DAG records with the
#: occasional multi-word extended record — the shape real trace rings
#: have — plus a zeroed tail.
DECODE_WORDS = 1 << 18

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_interpreter.json"


def _measure(name: str) -> dict:
    """Best-of-``REPEATS`` run of one workload on every tier.

    Repeats are interleaved across tiers (tier-inner, repeat-outer) so
    no tier systematically lands on a hotter or more contended CPU than
    the others — engine-major ordering was measurably biased against
    whichever tier ran last.
    """
    bench = benchmark_named(name)
    best: dict[str, dict] = {}
    for _ in range(REPEATS):
        for tier in TIERS:
            module = compile_source(bench.source, name)
            start = time.perf_counter()
            outcome = run_once(module, engine=tier)
            seconds = time.perf_counter() - start
            if tier not in best or seconds < best[tier]["seconds"]:
                best[tier] = {
                    "seconds": seconds,
                    "instructions": outcome.instructions,
                    "cycles": outcome.cycles,
                    "output": outcome.output,
                }
    for entry in best.values():
        entry["ips"] = entry["instructions"] / entry["seconds"]
    return best


def _decode_subject() -> list[int]:
    """A deterministic trace-ring-shaped word stream."""
    words: list[int] = []
    ext_cycle = [
        ExtRecord(ExtKind.TIMESTAMP, 13, (1234, 0)),
        ExtRecord(ExtKind.SYNC, 2, (7, 9, 3, 1000, 0)),
        ExtRecord(ExtKind.SNAP_MARK, 0),
    ]
    i = 0
    while len(words) < DECODE_WORDS - 64:
        # A loop working set: the same few DAGs with a few path shapes
        # repeating, as hot loops produce (and as the decode cache is
        # sized for).
        words.append(
            DagRecord(dag_id=(i * 13) % 97, path_bits=(i * 5) % 23).encode()
        )
        if i % 50 == 49:
            words.extend(ext_cycle[i % len(ext_cycle)].encode())
        i += 1
    words.extend([0] * (DECODE_WORDS - len(words)))  # zeroed tail
    return words


def _measure_decode() -> dict:
    """Scalar vs bulk forward-decode throughput on the synthetic ring."""
    words = _decode_subject()
    n = len(words)
    _DAG_CACHE.clear()  # the bulk path earns its warm cache itself
    results = {}
    for label, scanner in (("scalar", read_forward), ("bulk", read_forward_bulk)):
        best = None
        records = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            records = scanner(words, 0, n)
            seconds = time.perf_counter() - start
            if best is None or seconds < best:
                best = seconds
        results[label] = {
            "seconds": round(best, 4),
            "words_per_sec": round(n / best),
            "records": len(records),
        }
    assert results["bulk"]["records"] == results["scalar"]["records"]
    results["speedup"] = round(
        results["bulk"]["words_per_sec"] / results["scalar"]["words_per_sec"], 3
    )
    results["words"] = n
    return results


def run_benchmark() -> dict:
    """Measure every workload under every tier plus decode; write and
    return the report."""
    rows = []
    for name in WORKLOADS:
        measured = _measure(name)
        reference = measured["reference"]
        for tier in TIERS[1:]:
            # Equivalence cross-check: same work, same result.
            assert measured[tier]["output"] == reference["output"], name
            assert measured[tier]["cycles"] == reference["cycles"], name
            assert (
                measured[tier]["instructions"] == reference["instructions"]
            ), name
        rows.append(
            {
                "name": name,
                "instructions": reference["instructions"],
                "engines": {
                    tier: {
                        "seconds": round(measured[tier]["seconds"], 4),
                        "ips": round(measured[tier]["ips"]),
                    }
                    for tier in TIERS
                },
                "speedup": {
                    tier: round(measured[tier]["ips"] / reference["ips"], 3)
                    for tier in TIERS[1:]
                },
            }
        )

    geo_mean = {
        tier: round(
            geometric_mean([row["speedup"][tier] for row in rows]), 3
        )
        for tier in TIERS[1:]
    }
    decode = _measure_decode()

    report = {
        "schema": SCHEMA,
        "workloads": rows,
        "geo_mean": geo_mean,
        # Kept for readers of the v1 shape: the fast tier's geo mean.
        "geo_mean_speedup": geo_mean["fast"],
        "decode": decode,
    }
    # Other benchmarks (bench_replay) keep their own sections in the
    # same file; carry them over — and our own history — rather than
    # clobbering.
    try:
        previous = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        previous = {}
    history = previous.get("history", [])
    history.append(
        {
            "geo_mean": geo_mean,
            "decode_speedup": decode["speedup"],
            "block_ips_gzip": rows[0]["engines"]["block"]["ips"],
        }
    )
    report["history"] = history[-HISTORY_LIMIT:]
    for key, value in previous.items():
        report.setdefault(key, value)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_regression() -> int:
    """Exit 1 when block geo-mean or decode speedup regressed >25%
    between the two most recent history entries."""
    try:
        report = json.loads(OUTPUT_PATH.read_text())
    except (OSError, ValueError):
        report = {}
    history = report.get("history", [])
    if len(history) < 2:
        print(
            f"bench_interpreter --check: {len(history)} history "
            "entr(ies) in BENCH_interpreter.json, nothing to compare"
        )
        return 0
    prev, last = history[-2], history[-1]
    failed = False
    for label, get in (
        ("block geo-mean speedup", lambda h: h["geo_mean"]["block"]),
        ("decode speedup", lambda h: h["decode_speedup"]),
    ):
        try:
            before, after = get(prev), get(last)
        except (KeyError, TypeError):
            continue  # metric introduced since the older entry
        if after < before * (1 - REGRESSION_TOLERANCE):
            print(
                f"bench_interpreter --check: FAIL — {label} {after:.2f}x "
                f"is down {(1 - after / before):.0%} from previous "
                f"{before:.2f}x (tolerance {REGRESSION_TOLERANCE:.0%})"
            )
            failed = True
        else:
            print(
                f"bench_interpreter --check: ok — {label} {after:.2f}x "
                f"vs previous {before:.2f}x"
            )
    return 1 if failed else 0


def _render(report: dict) -> str:
    rows = [
        (
            row["name"],
            row["instructions"],
            f"{row['engines']['reference']['ips']:,}",
            f"{row['engines']['fast']['ips']:,}",
            f"{row['engines']['block']['ips']:,}",
            f"{row['speedup']['fast']:.2f}x",
            f"{row['speedup']['block']:.2f}x",
        )
        for row in report["workloads"]
    ]
    rows.append(
        (
            "geo mean", "", "", "", "",
            f"{report['geo_mean']['fast']:.2f}x",
            f"{report['geo_mean']['block']:.2f}x",
        )
    )
    engines = format_table(
        rows,
        headers=[
            "workload", "instructions", "ref ips", "fast ips", "block ips",
            "fast", "block",
        ],
        title="Interpreter engines: instructions/second",
    )
    decode = report["decode"]
    decode_rows = [
        ("scalar", f"{decode['scalar']['words_per_sec']:,} words/s",
         f"{decode['scalar']['records']:,} records"),
        ("bulk", f"{decode['bulk']['words_per_sec']:,} words/s",
         f"{decode['bulk']['records']:,} records"),
        ("speedup", f"{decode['speedup']:.2f}x", ""),
    ]
    decode_table = format_table(
        decode_rows,
        headers=["scanner", "throughput", "output"],
        title=f"Trace decode: {decode['words']:,}-word ring",
    )
    return engines + "\n" + decode_table


def test_engine_and_decode_speedups(report):
    result = run_benchmark()
    report.append(_render(result))
    assert result["geo_mean"]["fast"] >= MIN_FAST_GEO_MEAN_SPEEDUP, (
        f"fast engine only {result['geo_mean']['fast']:.2f}x over reference"
    )
    assert result["geo_mean"]["block"] >= MIN_BLOCK_GEO_MEAN_SPEEDUP, (
        f"block engine only {result['geo_mean']['block']:.2f}x over reference"
    )
    assert result["decode"]["speedup"] >= MIN_DECODE_SPEEDUP, (
        f"bulk decode only {result['decode']['speedup']:.2f}x over scalar"
    )


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        sys.exit(check_regression())
    print(_render(run_benchmark()))
