"""Fleet vault GC benchmark: reclaim rate + ingest under compaction.

The compaction PR's operational claims, measured:

* **reclaim rate** — a compact() pass over a vault where an age budget
  expires roughly half the store: reclaimed bytes per second of wall
  clock (tombstone append + blob unlinks + manifest rewrites + index
  re-persist all included);
* **ingest under compaction** — the same parallel-collector ingest the
  ingest benchmark runs, but with repeated compact() passes racing it
  from another thread.  Compaction holds each shard lock only briefly,
  so concurrent ingest must retain most of its clean-run throughput
  (the recorded ratio is informational; the assertion is an ordinal
  floor).

Results merge into the ``gc`` section of ``BENCH_fleet.json`` —
inside both ``latest`` and the newest ``history`` entry, so the
ingest benchmark's own ``--check`` comparison across history entries
keeps working unchanged::

    PYTHONPATH=src python benchmarks/bench_fleet_gc.py          # measure
    PYTHONPATH=src python benchmarks/bench_fleet_gc.py --check  # guard

``--check`` compares ``gc.reclaimed_bytes_per_sec`` between the two
most recent history entries that carry a ``gc`` section and fails on a
>25% regression; fewer than two such entries is not an error (the
section is new).

Also runs in the slow pytest lane.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time

# Importable both as benchmarks.bench_fleet_gc (pytest, repo root on
# sys.path) and as a direct script (only benchmarks/ on sys.path).
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_fleet_ingest import (  # noqa: E402
    OUTPUT_PATH,
    PARALLEL_COLLECTORS,
    _load_report,
    _make_snap,
)
from repro.fleet import Collector, RetentionPolicy, SnapVault
from repro.workloads.harness import format_table

#: Snaps in the reclaim-rate vault; an age horizon at the midpoint
#: clock expires roughly half of them.
GC_VAULT_SNAPS = 4_000

#: Snaps ingested while compaction passes race the collectors.
INGEST_SNAPS = 3_000

#: ``--check`` tolerance on reclaimed bytes/sec.
REGRESSION_TOLERANCE = 0.25


def _fill_vault(root: str, count: int, **vault_options) -> SnapVault:
    vault = SnapVault(root, shards=8, durability="batch", **vault_options)
    collectors = [
        Collector(vault, batch_size=64, queue_limit=512, name=f"fill-{i}")
        for i in range(PARALLEL_COLLECTORS)
    ]
    snaps = [_make_snap(i) for i in range(count)]
    chunks = [
        snaps[i :: PARALLEL_COLLECTORS] for i in range(PARALLEL_COLLECTORS)
    ]

    def feed(collector, chunk):
        for snap in chunk:
            collector.submit(snap)
        collector.drain()

    threads = [
        threading.Thread(target=feed, args=(c, chunk), daemon=True)
        for c, chunk in zip(collectors, chunks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for collector in collectors:
        collector.close()
    return vault


def _reclaim_rate() -> dict:
    """Time one compact() pass that expires ~half the vault."""
    root = tempfile.mkdtemp(prefix="tb-bench-gc-")
    try:
        vault = _fill_vault(root, GC_VAULT_SNAPS)
        stored = len(vault)
        store_bytes = vault.store_bytes()
        # Clocks are 1000*i: a horizon at the midpoint halves the vault
        # (group-snap pins rescue a few old incident members).
        policy = RetentionPolicy(
            max_age=(GC_VAULT_SNAPS // 2) * 1_000,
            pin_open_incidents=True,
        )
        start = time.perf_counter()
        plan = vault.compact(policy=policy)
        seconds = time.perf_counter() - start
        reclaimed = vault.metrics.reclaimed_bytes
        assert reclaimed > 0, "compaction reclaimed nothing"
        assert len(vault) == stored - len(plan.victims)
        return {
            "stored": stored,
            "store_bytes": store_bytes,
            "victims": len(plan.victims),
            "pins_honored": len(plan.pinned),
            "reclaimed_bytes": reclaimed,
            "seconds": round(seconds, 4),
            "reclaimed_bytes_per_sec": round(reclaimed / seconds, 1),
            "entries_per_sec": round(len(plan.victims) / seconds, 1),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _ingest_rate(compact_concurrently: bool) -> dict:
    """Parallel-collector ingest, optionally with racing GC passes."""
    root = tempfile.mkdtemp(prefix="tb-bench-gc-ingest-")
    try:
        # Pre-populate with old snaps so the racing GC has victims.
        vault = _fill_vault(root, 1_000)
        snaps = [_make_snap(100_000 + i) for i in range(INGEST_SNAPS)]
        collectors = [
            Collector(vault, batch_size=32, queue_limit=256, name=f"c{i}")
            for i in range(PARALLEL_COLLECTORS)
        ]
        chunks = [
            snaps[i :: PARALLEL_COLLECTORS]
            for i in range(PARALLEL_COLLECTORS)
        ]

        def feed(collector, chunk):
            for snap in chunk:
                collector.submit(snap)
            collector.drain()

        stop = threading.Event()
        gc_passes = [0]

        def gc_loop():
            now = 0
            while not stop.is_set():
                # Expire everything older than the newest pre-filled
                # clock; freshly-ingested snaps are far newer.
                vault.compact(
                    policy=RetentionPolicy(
                        max_age=1, pin_open_incidents=False
                    ),
                    now=now,
                )
                now += 1_000
                gc_passes[0] += 1

        threads = [
            threading.Thread(target=feed, args=(c, chunk), daemon=True)
            for c, chunk in zip(collectors, chunks)
        ]
        gc_thread = threading.Thread(target=gc_loop, daemon=True)
        start = time.perf_counter()
        if compact_concurrently:
            gc_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        stop.set()
        if compact_concurrently:
            gc_thread.join()
        # Nothing ingested during the run was lost to the racing GC.
        for collector in collectors:
            assert not collector.dead
        result = {
            "seconds": round(seconds, 4),
            "snaps_per_sec": round(len(snaps) / seconds, 1),
        }
        if compact_concurrently:
            result["gc_passes"] = gc_passes[0]
        return result
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_benchmark() -> dict:
    reclaim = _reclaim_rate()
    clean = _ingest_rate(compact_concurrently=False)
    racing = _ingest_rate(compact_concurrently=True)
    ratio = round(
        racing["snaps_per_sec"] / clean["snaps_per_sec"], 3
    )
    entry = {
        "reclaim": reclaim,
        "ingest_clean": clean,
        "ingest_during_compaction": racing,
        "ingest_retention_ratio": ratio,
        "reclaimed_bytes": reclaim["reclaimed_bytes"],
        "reclaimed_bytes_per_sec": reclaim["reclaimed_bytes_per_sec"],
    }
    report = _load_report()
    if not report:
        # No ingest benchmark has run yet: start a minimal report the
        # ingest benchmark will extend.
        report = {"schema": "tb-fleet-ingest-bench/2", "latest": {},
                  "history": [{}]}
    report.setdefault("latest", {})["gc"] = entry
    history = report.setdefault("history", [])
    if not history:
        history.append({})
    history[-1]["gc"] = entry
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return entry


def check_regression() -> int:
    """Exit 1 when the reclaim rate regressed >25% between the two most
    recent history entries that have a gc section."""
    history = _load_report().get("history", [])
    rates = [
        h["gc"]["reclaimed_bytes_per_sec"]
        for h in history
        if isinstance(h.get("gc"), dict)
        and h["gc"].get("reclaimed_bytes_per_sec")
    ]
    if len(rates) < 2:
        print(f"bench_fleet_gc --check: {len(rates)} gc history "
              "entr(ies) in BENCH_fleet.json, nothing to compare")
        return 0
    prev, last = rates[-2], rates[-1]
    if last < prev * (1 - REGRESSION_TOLERANCE):
        print(
            f"bench_fleet_gc --check: FAIL — reclaim rate "
            f"{last:,.0f} B/s is down {(1 - last / prev):.0%} from "
            f"previous {prev:,.0f} B/s "
            f"(tolerance {REGRESSION_TOLERANCE:.0%})"
        )
        return 1
    print(
        f"bench_fleet_gc --check: ok — reclaim rate {last:,.0f} B/s "
        f"vs previous {prev:,.0f} B/s"
    )
    return 0


def _render(entry: dict) -> str:
    reclaim = entry["reclaim"]
    rows = [
        ("vault before GC", f"{reclaim['stored']:,} snaps, "
                            f"{reclaim['store_bytes']:,} B"),
        ("victims / pins honored",
         f"{reclaim['victims']:,} / {reclaim['pins_honored']:,}"),
        ("reclaimed", f"{reclaim['reclaimed_bytes']:,} B in "
                      f"{reclaim['seconds']:.2f}s"),
        ("reclaim rate", f"{reclaim['reclaimed_bytes_per_sec']:,.0f} B/s "
                         f"({reclaim['entries_per_sec']:,.0f} entries/s)"),
        ("ingest, clean",
         f"{entry['ingest_clean']['snaps_per_sec']:,.0f} snaps/s"),
        ("ingest, GC racing",
         f"{entry['ingest_during_compaction']['snaps_per_sec']:,.0f} "
         f"snaps/s "
         f"({entry['ingest_during_compaction']['gc_passes']} passes)"),
        ("throughput retained", f"{entry['ingest_retention_ratio']:.0%}"),
    ]
    return format_table(
        rows,
        headers=["metric", "value"],
        title="Fleet vault: compaction reclaim + ingest under GC",
    )


def test_fleet_gc(report):
    entry = run_benchmark()
    report.append(_render(entry))
    assert entry["reclaimed_bytes"] > 0
    # GC must not starve ingest: an ordinal floor, not a tight bound
    # (shard locks are held per-batch; scheduler noise is real).
    assert entry["ingest_retention_ratio"] >= 0.15, (
        f"ingest kept only {entry['ingest_retention_ratio']:.0%} of its "
        "throughput under compaction"
    )


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        raise SystemExit(check_regression())
    print(_render(run_benchmark()))
