"""Federated scatter-gather benchmark: fan-out latency + loss overhead.

The federation PR's operational claims, measured:

* **fan-out latency vs vault count** — one fixed corpus of fleet snaps
  split round-robin across 1, 2, 4, and 8 regional vaults, each behind
  its own :class:`VaultService`; the federated ``select`` + ``incidents``
  pair runs repeatedly and the wall clock and per-client simulated
  cycles are recorded.  The corpus is constant, so the curve isolates
  the scatter-gather overhead itself;
* **partial-result overhead under one slow vault** — the widest fan-out
  again, but with one vault's replies delayed past every client
  deadline.  The federation must still answer (coverage ``partial``)
  and the overhead it pays is exactly the lost vault's deadline+retry
  budget in simulated cycles, plus a small wall-clock delta.

Results merge into the ``federation`` section of ``BENCH_fleet.json``
— inside both ``latest`` and the newest ``history`` entry, so the
ingest benchmark's own ``--check`` comparison across history entries
keeps working unchanged::

    PYTHONPATH=src python benchmarks/bench_fleet_federation.py          # measure
    PYTHONPATH=src python benchmarks/bench_fleet_federation.py --check  # guard

``--check`` compares ``federation.queries_per_sec`` (healthy queries at
the widest fan-out) between the two most recent history entries that
carry a ``federation`` section and fails on a >25% regression; fewer
than two such entries is not an error (the section is new).

Also runs in the slow pytest lane.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

# Importable both as benchmarks.bench_fleet_federation (pytest, repo
# root on sys.path) and as a direct script (only benchmarks/ on
# sys.path).
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_fleet_ingest import (  # noqa: E402
    OUTPUT_PATH,
    _load_report,
    _make_snap,
)
from repro.distributed.network import Network
from repro.fleet import FederatedQuery, SnapVault
from repro.fleet.remote import RemoteVaultClient, VaultService
from repro.workloads.harness import format_table

#: Snaps in the fixed corpus, split round-robin across the fleet.
CORPUS_SNAPS = 240

#: Fan-out widths measured.
VAULT_COUNTS = [1, 2, 4, 8]

#: select+incidents rounds per width (wall clock is averaged over them).
ROUNDS = 15

#: ``--check`` tolerance on healthy queries/sec at the widest fan-out.
REGRESSION_TOLERANCE = 0.25


def _build_fleet(root: str, count: int) -> dict[str, SnapVault]:
    vaults = {
        f"vault-{i:02d}": SnapVault(
            os.path.join(root, f"vault-{i:02d}"), shards=4
        )
        for i in range(count)
    }
    names = list(vaults)
    for i in range(CORPUS_SNAPS):
        vaults[names[i % count]].put(_make_snap(i))
    return vaults


def _serve(vaults: dict[str, SnapVault], **client_kw):
    network = Network()
    clients = {}
    for name, vault in vaults.items():
        network.register_vault_service(VaultService(vault, name=name))
        clients[name] = RemoteVaultClient(network, service=name, **client_kw)
    return network, clients


def _fan_out_point(root: str, count: int) -> dict:
    vaults = _build_fleet(os.path.join(root, str(count)), count)
    _, clients = _serve(vaults)
    federated = FederatedQuery(clients)
    start = time.perf_counter()
    for _ in range(ROUNDS):
        entries, report = federated.select()
        incidents, _ = federated.incidents()
    seconds = time.perf_counter() - start
    assert report.coverage == "full"
    assert len(entries) == CORPUS_SNAPS
    cycles = max(c.cycles_spent for c in clients.values())
    return {
        "vaults": count,
        "entries": len(entries),
        "incidents": len(incidents),
        "seconds": round(seconds, 4),
        "queries_per_sec": round(2 * ROUNDS / seconds, 1),
        "max_client_cycles": cycles,
    }


def _slow_vault_point(root: str, count: int) -> dict:
    """Widest fan-out with one vault delayed past every deadline."""
    vaults = _build_fleet(os.path.join(root, "slow"), count)
    network, clients = _serve(vaults, max_retries=1)
    slow = sorted(vaults)[-1]
    network.query_chaos = (
        lambda service, op, attempt: "delay" if service == slow else None
    )
    federated = FederatedQuery(clients)
    start = time.perf_counter()
    entries, report = federated.select()
    seconds = time.perf_counter() - start
    assert report.coverage == "partial"
    assert report.degraded_vaults() == [slow]
    healthy = max(
        c.cycles_spent for n, c in clients.items() if n != slow
    )
    return {
        "vaults": count,
        "entries_recovered": len(entries),
        "entries_lost": CORPUS_SNAPS - len(entries),
        "seconds": round(seconds, 4),
        "lost_vault_cycles": clients[slow].cycles_spent,
        "healthy_vault_cycles": healthy,
    }


def run_benchmark() -> dict:
    root = tempfile.mkdtemp(prefix="tb-bench-federation-")
    try:
        fan_out = [_fan_out_point(root, n) for n in VAULT_COUNTS]
        slow = _slow_vault_point(root, VAULT_COUNTS[-1])
    finally:
        shutil.rmtree(root, ignore_errors=True)
    entry = {
        "fan_out": fan_out,
        "one_slow_vault": slow,
        "queries_per_sec": fan_out[-1]["queries_per_sec"],
    }
    report = _load_report()
    if not report:
        report = {"schema": "tb-fleet-ingest-bench/2", "latest": {},
                  "history": [{}]}
    report.setdefault("latest", {})["federation"] = entry
    history = report.setdefault("history", [])
    if not history:
        history.append({})
    history[-1]["federation"] = entry
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return entry


def check_regression() -> int:
    """Exit 1 when healthy federated query throughput regressed >25%
    between the two most recent history entries with a federation
    section."""
    history = _load_report().get("history", [])
    rates = [
        h["federation"]["queries_per_sec"]
        for h in history
        if isinstance(h.get("federation"), dict)
        and h["federation"].get("queries_per_sec")
    ]
    if len(rates) < 2:
        print(f"bench_fleet_federation --check: {len(rates)} federation "
              "history entr(ies) in BENCH_fleet.json, nothing to compare")
        return 0
    prev, last = rates[-2], rates[-1]
    if last < prev * (1 - REGRESSION_TOLERANCE):
        print(
            f"bench_fleet_federation --check: FAIL — federated query "
            f"rate {last:,.1f}/s is down {(1 - last / prev):.0%} from "
            f"previous {prev:,.1f}/s "
            f"(tolerance {REGRESSION_TOLERANCE:.0%})"
        )
        return 1
    print(
        f"bench_fleet_federation --check: ok — federated query rate "
        f"{last:,.1f}/s vs previous {prev:,.1f}/s"
    )
    return 0


def _render(entry: dict) -> str:
    rows = [
        (
            f"fan-out ×{point['vaults']}",
            f"{point['queries_per_sec']:,.1f} queries/s, "
            f"{point['max_client_cycles']:,} cycles/client",
        )
        for point in entry["fan_out"]
    ]
    slow = entry["one_slow_vault"]
    rows.append(
        (
            f"one slow vault of {slow['vaults']}",
            f"{slow['entries_recovered']}/{CORPUS_SNAPS} entries, "
            f"lost client paid {slow['lost_vault_cycles']:,} cycles "
            f"(healthy {slow['healthy_vault_cycles']:,})",
        )
    )
    return format_table(
        rows,
        headers=["metric", "value"],
        title="Fleet federation: scatter-gather fan-out + loss overhead",
    )


def test_fleet_federation(report):
    entry = run_benchmark()
    report.append(_render(entry))
    # The lost vault pays its deadline+retry budget; the healthy ones
    # must not be dragged down with it.
    slow = entry["one_slow_vault"]
    assert slow["lost_vault_cycles"] > slow["healthy_vault_cycles"]
    assert slow["entries_recovered"] > 0


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        raise SystemExit(check_regression())
    print(_render(run_benchmark()))
