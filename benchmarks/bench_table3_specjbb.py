"""Table 3: SPECJbb (managed-code / IL instrumentation) overhead.

Paper: throughput drops 16.4%-24.9% across {Win, Lin, Sun} x {1, 5}
warehouses.  The managed pipeline costs more than the native web server
(line-boundary probes, catch-all stubs, bounds checks in the guest)
but far less than CPU-bound native SPECint worst cases.

Reproduced claims: every configuration degrades by a middling factor
(strictly between the web-server ~5% and ~2x), and the ordering
web < jbb holds for every system.
"""

import pytest

from repro.workloads.harness import format_table
from repro.workloads.jbb import PAPER_RATIOS, SYSTEMS, measure

CONFIGS = [(system, warehouses) for system in SYSTEMS for warehouses in (1, 5)]


@pytest.fixture(scope="module")
def results():
    return {cfg: measure(*cfg) for cfg in CONFIGS}


def test_table3_specjbb(results, report, benchmark):
    rows = []
    for (system, warehouses), result in results.items():
        rows.append(
            (
                f"{system} {warehouses}W",
                f"{result.base_throughput:.2f}",
                f"{result.traced_throughput:.2f}",
                f"{result.ratio:.3f}",
                f"{PAPER_RATIOS[(system, warehouses)]:.3f}",
            )
        )
    table = format_table(
        rows,
        headers=["System", "Normal (txn/Mcyc)", "TraceBack", "Ratio", "Paper"],
        title="Table 3 — SPECJbb analog, IL-mode instrumentation",
    )
    report.append(table)
    print("\n" + table)

    for result in results.values():
        assert 1.05 < result.ratio < 1.8, (
            f"{result.system} {result.warehouses}W ratio {result.ratio}"
        )

    # Managed-code overhead must exceed the I/O-bound web server's.
    from repro.workloads.webserver import measure as web_measure

    web_result, _, _ = web_measure()
    for result in results.values():
        assert result.ratio > web_result.ratio

    benchmark.pedantic(lambda: measure("Win", 1), iterations=1, rounds=1)
