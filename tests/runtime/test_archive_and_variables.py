"""Snap compression (§2.1's 10x claim) and variable display (§3.6)."""

from repro import TraceSession, trace_program
from repro.reconstruct import global_variables, render_variables, variable
from repro.runtime import (
    RuntimeConfig,
    SnapPolicy,
    compress_snap,
    compression_ratio,
    decompress_snap,
    load_compressed,
    save_compressed,
)

LOOPY = """
int counters[16];
int total = 0;
int main() {
    int i;
    for (i = 0; i < 300; i = i + 1) {
        counters[i % 16] = counters[i % 16] + 1;
        total = total + 1;
    }
    snap(1);
    return 0;
}
"""


def run_with_memory(src: str = LOOPY):
    session = TraceSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on api\ninclude memory on")
        )
    )
    session.add_minic(src, name="app", file_name="app.c")
    return session.run()


# ----------------------------------------------------------------------
# Compression
# ----------------------------------------------------------------------
def test_compress_round_trip():
    run = run_with_memory()
    snap = run.snap
    clone = decompress_snap(compress_snap(snap))
    assert clone.reason == snap.reason
    assert [b.words for b in clone.buffers] == [b.words for b in snap.buffers]
    assert clone.memory == snap.memory
    assert [vars(m) for m in clone.modules] == [vars(m) for m in snap.modules]


def test_compression_hits_paper_factor():
    """Paper §2.1: "readily compressible by a factor of 10 or more"."""
    run = run_with_memory()
    assert compression_ratio(run.snap) > 10.0


def test_compress_does_not_mutate_snap():
    run = run_with_memory()
    before = [list(b.words) for b in run.snap.buffers]
    compress_snap(run.snap)
    compress_snap(run.snap)
    assert [list(b.words) for b in run.snap.buffers] == before


def test_compressed_file_round_trip(tmp_path):
    run = run_with_memory()
    path = tmp_path / "snap.tbz"
    save_compressed(run.snap, str(path))
    clone = load_compressed(str(path))
    assert clone.process_name == run.snap.process_name
    # And it is genuinely smaller than the JSON form.
    json_path = tmp_path / "snap.json"
    run.snap.save(str(json_path))
    assert path.stat().st_size < json_path.stat().st_size / 5


def test_decompress_rejects_garbage():
    import pytest

    with pytest.raises(ValueError):
        decompress_snap(b"not a snap")


# ----------------------------------------------------------------------
# Variables
# ----------------------------------------------------------------------
def test_globals_resolved_with_values():
    run = run_with_memory()
    names = {v.name for v in global_variables(run.snap, run.mapfiles)}
    assert {"counters", "total"} <= names
    total = variable(run.snap, run.mapfiles, "total")
    assert total.scalar == 300
    counters = variable(run.snap, run.mapfiles, "counters")
    assert sum(counters.values) == 300


def test_corrupted_neighbour_visible():
    """The Fidelity diagnosis: the overwritten neighbour's value is in
    the snap's variable pane."""
    from repro.workloads.scenarios import FIDELITY_C

    session = TraceSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled\ninclude memory on")
        )
    )
    session.add_minic(FIDELITY_C, name="fidelity", file_name="feed.c")
    run = session.run()
    neighbor = variable(run.snap, run.mapfiles, "neighbor")
    # Initialized {1000, 2000, 3000, 4000}; the overrun stomped the
    # first two entries with small loop values.
    assert neighbor.values[0] < 1000
    assert neighbor.values[2:] == [3000, 4000]


def test_variables_without_memory_dump():
    run = trace_program(LOOPY.replace("snap(1);", "snap(1); //"))
    # Default policy has no memory dump: values report as absent.
    values = global_variables(run.snap, run.mapfiles)
    assert values  # symbols still resolve...
    assert all(v.values is None for v in values)  # ...but without data


def test_render_variables_text():
    run = run_with_memory()
    text = render_variables(run.snap, run.mapfiles)
    assert "app.total = 300" in text
    assert "app.counters[16]" in text


def test_string_literals_excluded():
    run = run_with_memory(
        'int g = 1;\nint main() { print_str("hi"); snap(1); return 0; }'
    )
    names = {v.name for v in global_variables(run.snap, run.mapfiles)}
    assert "g" in names
    assert not any(n.startswith("__str_") for n in names)
