"""Snap policy, suppression, API snaps, group snaps, hang detection (§3.6)."""

import pytest

from repro import TraceSession
from repro.runtime import (
    PolicyError,
    RuntimeConfig,
    ServiceProcess,
    SnapFile,
    SnapPolicy,
    SnapStore,
    Suppressor,
)

CRASH_LOOP_SRC = """
int boom(int x) {
    return 10 / x;
}
int main() {
    int i;
    int acc;
    int e;
    acc = 0;
    for (i = 0; i < 5; i = i + 1) {
        try {
            acc = acc + boom(0);
        } catch (e) {
            acc = acc + e;
        }
    }
    print_int(acc);
    return 0;
}
"""


# ----------------------------------------------------------------------
# Policy parsing
# ----------------------------------------------------------------------
def test_policy_parse_full():
    policy = SnapPolicy.parse(
        """
        # comment
        snap on exception 2 5
        snap on unhandled
        snap on signal 15
        snap on api
        snap on hang
        suppress duplicates off
        max snaps 7
        include memory on
        """
    )
    assert policy.exception_codes == {2, 5}
    assert policy.unhandled
    assert policy.signals == {15}
    assert policy.api and policy.hang
    assert not policy.suppress_duplicates
    assert policy.max_snaps == 7
    assert policy.include_memory


def test_policy_parse_empty_means_never():
    policy = SnapPolicy.parse("")
    assert not policy.wants_exception(2)
    assert not policy.wants_signal(15)
    assert not policy.unhandled


def test_policy_exception_wildcard():
    policy = SnapPolicy.parse("snap on exception")
    assert policy.wants_exception(1) and policy.wants_exception(999)


def test_policy_rejects_garbage():
    with pytest.raises(PolicyError):
        SnapPolicy.parse("snap on full-moon")
    with pytest.raises(PolicyError):
        SnapPolicy.parse("definitely not a directive")


def test_suppressor_dedupes():
    sup = Suppressor(enabled=True)
    assert sup.should_snap(("exception", 2, "here"))
    assert not sup.should_snap(("exception", 2, "here"))
    assert sup.should_snap(("exception", 2, "elsewhere"))
    assert sup.suppressed_count == 1


def test_suppressor_disabled_passes_everything():
    sup = Suppressor(enabled=False)
    assert sup.should_snap(("x",)) and sup.should_snap(("x",))


# ----------------------------------------------------------------------
# Triggers end to end
# ----------------------------------------------------------------------
def run_session(src: str, policy: SnapPolicy, **kwargs):
    session = TraceSession(
        runtime_config=RuntimeConfig(policy=policy), **kwargs
    )
    session.add_minic(src, name="app")
    return session, session.run()


def test_first_chance_snaps_suppress_duplicates():
    """The same exception from the same location snaps once (§3.6.2) —
    even though it is thrown five times."""
    policy = SnapPolicy.parse("snap on exception\nsuppress duplicates on")
    session, run = run_session(CRASH_LOOP_SRC, policy)
    assert run.output == ["10"]  # 5 * DIVIDE_BY_ZERO(2)
    assert run.runtime.stats.snaps == 1
    assert run.runtime.suppressor.suppressed_count == 4


def test_suppression_off_snaps_every_time():
    policy = SnapPolicy.parse("snap on exception\nsuppress duplicates off")
    _, run = run_session(CRASH_LOOP_SRC, policy)
    assert run.runtime.stats.snaps == 5


def test_max_snaps_caps_volume():
    policy = SnapPolicy.parse(
        "snap on exception\nsuppress duplicates off\nmax snaps 2"
    )
    _, run = run_session(CRASH_LOOP_SRC, policy)
    assert run.runtime.stats.snaps == 2


def test_api_snap_trigger():
    src = """
int main() {
    snap(1234);
    return 0;
}
"""
    policy = SnapPolicy.parse("snap on api")
    _, run = run_session(src, policy)
    assert run.snap is not None
    assert run.snap.reason == "api"
    assert run.snap.detail == {"code": 1234}


def test_snap_carries_module_and_thread_metadata():
    policy = SnapPolicy.parse("snap on api")
    _, run = run_session("int main() { snap(1); return 0; }", policy)
    snap = run.snap
    assert snap.process_name == "app"
    assert any(m.name == "app" for m in snap.modules)
    assert any(t.tid == 0 for t in snap.threads)
    assert snap.buffers  # raw buffers embedded


def test_snap_memory_dump_optional():
    policy = SnapPolicy.parse("snap on api\ninclude memory on")
    src = """
int cell = 77;
int main() { snap(1); return 0; }
"""
    _, run = run_session(src, policy)
    assert run.snap.memory
    # The global's value is present in the dumped data segment.
    assert any(77 in words for _, words in run.snap.memory.values())


def test_snap_file_round_trips_through_disk(tmp_path):
    policy = SnapPolicy.parse("snap on api")
    _, run = run_session("int main() { snap(9); return 0; }", policy)
    path = tmp_path / "snap.json"
    run.snap.save(str(path))
    clone = SnapFile.load(str(path))
    assert clone.reason == run.snap.reason
    assert clone.buffers[0].words == run.snap.buffers[0].words
    assert [m.checksum for m in clone.modules] == [
        m.checksum for m in run.snap.modules
    ]


def test_snap_store_directory(tmp_path):
    store = SnapStore(directory=str(tmp_path))
    policy = SnapPolicy.parse("snap on api")
    session = TraceSession(
        runtime_config=RuntimeConfig(policy=policy, snap_store=store)
    )
    session.add_minic("int main() { snap(1); return 0; }", name="app")
    session.run()
    assert len(list(tmp_path.iterdir())) == 1


# ----------------------------------------------------------------------
# Replay-dict independence (regression: salvage aliased the source)
# ----------------------------------------------------------------------
def _snap_dict_with_replay() -> dict:
    return {
        "reason": "exception",
        "detail": {"code": 3},
        "process_name": "app",
        "pid": 1,
        "machine_name": "m",
        "clock": 10,
        "modules": [],
        "buffers": [],
        "threads": [],
        "memory": {},
        "replay": {
            "seed": {"pid": 1},
            "ndlog": {"format": "tb-ndlog/2", "header": {"pid": 1}},
        },
    }


def test_from_dict_salvage_does_not_alias_replay():
    """Regression: the salvage path handed the caller's replay dict to
    the snap uncopied, so chaos damage on a salvaged snap leaked into
    the source artifact."""
    d = _snap_dict_with_replay()
    snap, notes = SnapFile.from_dict_salvage(d)
    assert not notes
    snap.replay["ndlog"]["header"]["pid"] = 999
    del snap.replay["seed"]
    assert d["replay"]["ndlog"]["header"]["pid"] == 1
    assert "seed" in d["replay"]


def test_from_dict_deep_copies_nested_ndlog():
    d = _snap_dict_with_replay()
    snap = SnapFile.from_dict(d)
    snap.replay["ndlog"]["format"] = "damaged"
    assert d["replay"]["ndlog"]["format"] == "tb-ndlog/2"


def test_copy_snap_replay_is_deep_independent():
    from repro.chaos.inject import copy_snap

    original = SnapFile.from_dict(_snap_dict_with_replay())
    clone = copy_snap(original)
    clone.replay["ndlog"]["header"]["pid"] = 999
    del clone.replay["ndlog"]["format"]
    assert original.replay["ndlog"]["header"]["pid"] == 1
    assert original.replay["ndlog"]["format"] == "tb-ndlog/2"


def test_replayable_property_delegates_to_status_ladder():
    """The property and replayable_status must be the same
    classification (vault manifests vs local snaps)."""
    from repro.replay import replayable_status

    base = _snap_dict_with_replay()
    shapes = [
        base["replay"],
        {"seed": {"pid": 1}},
        {},
        {"ndlog": "not-a-dict"},
        {"ndlog": {"format": "tb-ndlog/1"}},
    ]
    for replay in shapes:
        d = dict(base)
        d["replay"] = replay
        assert SnapFile.from_dict(d).replayable == replayable_status(replay)


# ----------------------------------------------------------------------
# Service process: groups and hangs
# ----------------------------------------------------------------------
def test_group_snap_triggers_partners():
    service = ServiceProcess()
    service.configure_group("pair", ["alpha", "beta"])
    policy = SnapPolicy.parse("snap on api")

    from repro.vm import Machine

    machine = Machine()
    s1 = TraceSession(
        machine=machine, process_name="alpha",
        runtime_config=RuntimeConfig(policy=policy), service=service,
    )
    s1.add_minic("int main() { snap(5); return 0; }", name="a")
    s2 = TraceSession(
        machine=machine, process_name="beta",
        runtime_config=RuntimeConfig(policy=policy), service=service,
    )
    s2.add_minic("int main() { sleep(100000); return 0; }", name="b")
    s2.process.start("b")
    run1 = s1.run()
    assert run1.snap.reason == "api"
    group_snaps = [s for s in s2.runtime.snap_store.snaps if s.reason == "group"]
    assert len(group_snaps) == 1
    assert group_snaps[0].detail["initiator"] == "alpha"


def test_hang_detection_snaps_deadlocked_process():
    service = ServiceProcess()
    policy = SnapPolicy.parse("snap on hang")
    src = """
int worker(int arg) {
    lock(2);
    sleep(500);
    lock(1);
    return 0;
}
int main() {
    thread_create(worker, 0);
    lock(1);
    sleep(500);
    lock(2);
    return 0;
}
"""
    session = TraceSession(
        runtime_config=RuntimeConfig(policy=policy), service=service
    )
    session.add_minic(src, name="app")
    run = session.run(max_cycles=2_000_000)
    assert run.status == "stalled"
    hung = service.poll_status()
    assert session.runtime in hung
    snaps = service.check_hangs()
    # TraceSession.run already snapped the hang; the service's own check
    # finds the process still hung but the snap store has the artifact.
    assert any(s.reason == "hang" for s in session.runtime.snap_store.snaps)


def test_healthy_process_heartbeat_ok():
    session = TraceSession()
    session.add_minic("int main() { sleep(1000); return 0; }", name="app")
    session.process.start("app")
    assert session.runtime.heartbeat()
