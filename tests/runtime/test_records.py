"""Trace record format — the exact Figure 1 bit layout."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import (
    BAD_DAG_ID,
    INVALID,
    SENTINEL,
    DagRecord,
    ExtKind,
    ExtRecord,
    dag_header_word,
    decode_dag,
    is_dag_word,
    is_ext_header,
    is_ext_trailer,
    read_backward,
    read_forward,
)
from repro.runtime.records import MAX_DAG_ID, PATH_BITS, RESERVED_DAG_ID


def test_dag_record_bit_layout():
    """Bit 31 = type, bits 30..11 = DAG id, bits 10..0 = path bits."""
    record = DagRecord(dag_id=0x12345, path_bits=0b101)
    word = record.encode()
    assert word >> 31 == 1
    assert (word >> 11) & 0xFFFFF == 0x12345
    assert word & 0x7FF == 0b101
    assert decode_dag(word) == record


def test_dag_header_word_has_no_path_bits():
    word = dag_header_word(42)
    assert decode_dag(word) == DagRecord(dag_id=42, path_bits=0)


def test_sentinel_is_all_ones_and_reserved():
    assert SENTINEL == 0xFFFFFFFF
    assert not is_dag_word(SENTINEL)
    rec = decode_dag(SENTINEL)
    assert rec.dag_id == RESERVED_DAG_ID  # never allocated


def test_invalid_is_zero():
    assert INVALID == 0
    assert not is_dag_word(INVALID)
    assert not is_ext_header(INVALID)


def test_bad_dag_id_below_reserved():
    assert BAD_DAG_ID == RESERVED_DAG_ID - 1
    assert MAX_DAG_ID < BAD_DAG_ID
    assert DagRecord(dag_id=BAD_DAG_ID, path_bits=0).is_bad


def test_single_word_extended_record():
    record = ExtRecord(kind=ExtKind.TIMESTAMP, inline=7)
    words = record.encode()
    assert len(words) == 1
    assert is_ext_header(words[0])
    assert not is_ext_trailer(words[0])


def test_multi_word_extended_record_has_trailer():
    record = ExtRecord(kind=ExtKind.SYNC, inline=2, payload=(1, 2, 3))
    words = record.encode()
    assert len(words) == 5
    assert is_ext_header(words[0])
    assert is_ext_trailer(words[-1])
    assert record.size == 5


def test_forward_read_stops_at_invalid():
    words = [DagRecord(1, 0).encode(), 0, DagRecord(2, 0).encode()]
    records = read_forward(words, 0, 3)
    assert records == [DagRecord(1, 0)]


def test_forward_read_stops_at_sentinel():
    words = [DagRecord(1, 0).encode(), SENTINEL, DagRecord(2, 0).encode()]
    assert read_forward(words, 0, 3) == [DagRecord(1, 0)]


def test_forward_read_truncated_extended_record():
    full = ExtRecord(kind=ExtKind.SYNC, inline=1, payload=(9, 9, 9)).encode()
    words = [DagRecord(1, 0).encode()] + full[:2]  # header+1 payload word
    assert read_forward(words, 0, len(words)) == [DagRecord(1, 0)]


def test_payload_can_contain_any_bit_pattern():
    """Payload words that look like sentinels or DAG records must not
    confuse either scan direction (the trailer exists for this)."""
    tricky = ExtRecord(
        kind=ExtKind.EXCEPTION,
        inline=0,
        payload=(SENTINEL, DagRecord(5, 1).encode(), 0),
    )
    words = [DagRecord(3, 0).encode(), *tricky.encode(), DagRecord(4, 2).encode()]
    forward = read_forward(words, 0, len(words))
    backward = read_backward(words, len(words) - 1, 0)
    assert forward == backward
    assert forward == [DagRecord(3, 0), tricky, DagRecord(4, 2)]


@st.composite
def record_stream(draw):
    records = []
    count = draw(st.integers(min_value=0, max_value=12))
    for _ in range(count):
        if draw(st.booleans()):
            records.append(
                DagRecord(
                    dag_id=draw(st.integers(0, MAX_DAG_ID)),
                    path_bits=draw(st.integers(0, (1 << PATH_BITS) - 1)),
                )
            )
        else:
            payload = tuple(
                draw(
                    st.lists(
                        st.integers(0, 0xFFFFFFFF), min_size=0, max_size=5
                    )
                )
            )
            records.append(
                ExtRecord(
                    kind=draw(st.integers(1, 8)),
                    inline=draw(st.integers(0, 0xFFFF)),
                    payload=payload,
                )
            )
    return records


@given(record_stream())
def test_write_then_read_forward_round_trip(records):
    words = []
    for record in records:
        if isinstance(record, DagRecord):
            words.append(record.encode())
        else:
            words.extend(record.encode())
    assert read_forward(words, 0, len(words)) == records


@given(record_stream())
def test_backward_mining_agrees_with_forward(records):
    """§4.1's back-to-front mining recovers the same record sequence."""
    words = []
    for record in records:
        if isinstance(record, DagRecord):
            words.append(record.encode())
        else:
            words.extend(record.encode())
    forward = read_forward(words, 0, len(words))
    backward = read_backward(words, len(words) - 1, 0)
    assert forward == backward
