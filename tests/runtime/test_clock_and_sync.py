"""Clocks (§3.5) and logical-thread SYNC management (§5.1)."""

from repro.runtime import (
    HardwareClock,
    LogicalClock,
    LogicalThreadManager,
    join64,
    next_runtime_id,
    split64,
)
from repro.runtime.records import ExtKind, SyncKind
from repro.vm import Machine


def test_split_join_round_trip():
    for value in (0, 1, 0xFFFFFFFF, 0x1_0000_0000, 0xDEAD_BEEF_CAFE):
        assert join64(*split64(value)) == value


def test_hardware_clock_tracks_machine_and_skew():
    machine = Machine(clock_skew=500)
    clock = HardwareClock(machine)
    assert clock.now() == 500
    machine.cycles += 10
    assert clock.now() == 510
    assert clock.is_real_time


def test_logical_clock_counts_events():
    clock = LogicalClock()
    assert clock.now() == 0
    clock.tick()
    clock.tick()
    assert clock.now() == 2
    assert not clock.is_real_time


def test_runtime_ids_unique():
    a, b = next_runtime_id(), next_runtime_id()
    assert a != b


def test_sync_quadruple_sequence():
    """One RPC: four SYNCs, same logical id, successive sequence numbers."""
    caller = LogicalThreadManager(runtime_id=next_runtime_id())
    callee = LogicalThreadManager(runtime_id=next_runtime_id())

    rec1, triple = caller.caller_send(tid=0, clock=100)
    rec2 = callee.callee_enter(tid=5, triple=triple, clock=200)
    rec3, reply = callee.callee_exit(tid=5, clock=300)
    rec4 = caller.caller_return(tid=0, reply=reply, clock=400)

    records = [rec1, rec2, rec3, rec4]
    assert all(r.kind == ExtKind.SYNC for r in records)
    kinds = [r.inline for r in records]
    assert kinds == [SyncKind.CALL_OUT, SyncKind.ENTER, SyncKind.EXIT,
                     SyncKind.RETURN]
    logical_ids = {r.payload[1] for r in records}
    assert len(logical_ids) == 1
    seqs = [r.payload[2] for r in records]
    assert seqs == [seqs[0], seqs[0] + 1, seqs[0] + 2, seqs[0] + 3]


def test_partner_tables_updated():
    caller = LogicalThreadManager(runtime_id=1000)
    callee = LogicalThreadManager(runtime_id=2000)
    _, triple = caller.caller_send(tid=0, clock=0)
    callee.callee_enter(tid=1, triple=triple, clock=0)
    _, reply = callee.callee_exit(tid=1, clock=0)
    caller.caller_return(tid=0, reply=reply, clock=0)
    assert 1000 in callee.partners
    assert 2000 in caller.partners


def test_repeated_calls_reuse_logical_id():
    caller = LogicalThreadManager(runtime_id=3000)
    _, t1 = caller.caller_send(tid=0, clock=0)
    caller.caller_return(tid=0, reply=None, clock=0)
    _, t2 = caller.caller_send(tid=0, clock=0)
    assert t1["logical_id"] == t2["logical_id"]
    assert t2["seq"] > t1["seq"]


def test_distinct_threads_get_distinct_logical_ids():
    caller = LogicalThreadManager(runtime_id=4000)
    _, t1 = caller.caller_send(tid=0, clock=0)
    _, t2 = caller.caller_send(tid=1, clock=0)
    assert t1["logical_id"] != t2["logical_id"]


def test_caller_return_without_reply_still_advances():
    """The callee was uninstrumented: no reply triple, sequence still
    moves so later RPCs stay ordered."""
    caller = LogicalThreadManager(runtime_id=5000)
    _, t1 = caller.caller_send(tid=0, clock=0)
    record = caller.caller_return(tid=0, reply=None, clock=0)
    assert record.payload[2] == t1["seq"] + 1
