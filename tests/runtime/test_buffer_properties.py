"""Property tests on the ring-buffer write/mine cycle.

The §3.1–3.2 invariant: whatever sequence of records the runtime
appends, through any number of sub-buffer wraps, mining recovers a
*contiguous suffix* of that sequence, in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reconstruct import mine_buffer
from repro.runtime import TraceBuffer
from repro.runtime.records import DagRecord, ExtKind, ExtRecord, MAX_DAG_ID
from repro.runtime.snap import BufferDump
from repro.vm import Machine


def record_strategy():
    dag = st.builds(
        DagRecord,
        dag_id=st.integers(0, MAX_DAG_ID),
        path_bits=st.integers(0, 0x7FF),
    )
    ext = st.builds(
        ExtRecord,
        kind=st.sampled_from(
            [ExtKind.TIMESTAMP, ExtKind.SYNC, ExtKind.EXCEPTION,
             ExtKind.SNAP_MARK]
        ),
        inline=st.integers(0, 0xFFFF),
        payload=st.tuples().flatmap(
            lambda _: st.lists(
                st.integers(0, 0xFFFFFFFF), min_size=0, max_size=5
            ).map(tuple)
        ),
    )
    return st.one_of(dag, ext)


def dump_of(buf: TraceBuffer) -> BufferDump:
    return BufferDump(
        index=buf.index, flags=buf.flags, base=buf.base,
        sub_count=buf.sub_count, sub_size=buf.sub_size,
        owner_tid=buf.owner_tid, words=buf.snapshot(),
    )


@settings(max_examples=100, deadline=None)
@given(
    records=st.lists(record_strategy(), min_size=0, max_size=60),
    sub_count=st.integers(2, 4),
    sub_size=st.integers(8, 24),
)
def test_mined_records_are_ordered_suffix(records, sub_count, sub_size):
    machine = Machine()
    process = machine.create_process("t")
    buf = TraceBuffer.allocate(
        process, index=0, sub_count=sub_count, sub_size=sub_size
    )
    cursor = buf.sub_start(0) - 1
    written = []
    for record in records:
        size = 1 if isinstance(record, DagRecord) else record.size
        if size >= sub_size - 1:
            continue  # record physically cannot fit a sub-buffer; skip
        cursor = buf.append(cursor, record)
        written.append(record)

    mined = mine_buffer(dump_of(buf))
    assert mined == written[len(written) - len(mined):]
    if written:
        # The newest record always survives.
        assert mined and mined[-1] == written[-1]


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(0, 200),
    sub_count=st.integers(2, 4),
)
def test_capacity_bounds_retention(count, sub_count):
    """The ring retains at most its capacity, at least the last
    sub-buffer's worth (minus the zeroed one)."""
    machine = Machine()
    process = machine.create_process("t")
    sub_size = 10
    buf = TraceBuffer.allocate(
        process, index=0, sub_count=sub_count, sub_size=sub_size
    )
    cursor = buf.sub_start(0) - 1
    for i in range(count):
        cursor = buf.append(cursor, DagRecord(dag_id=i % 1000, path_bits=0))
    mined = mine_buffer(dump_of(buf))
    capacity = sub_count * (sub_size - 1)
    assert len(mined) <= min(count, capacity)
    if count >= capacity:
        # At least one full sub-buffer survives beyond the current one.
        assert len(mined) >= sub_size - 1
