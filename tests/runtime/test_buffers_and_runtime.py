"""Trace buffers, sub-buffering, buffer assignment/reuse, desperation."""

from repro.instrument import instrument_module
from repro.isa import assemble
from repro.lang.minic import compile_source
from repro.runtime import (
    BufferFlags,
    HEADER_WORDS,
    RuntimeConfig,
    SENTINEL,
    TraceBackRuntime,
    TraceBuffer,
)
from repro.runtime.records import ExtKind, ExtRecord
from repro.vm import Machine


def fresh_process():
    machine = Machine()
    return machine, machine.create_process("t")


# ----------------------------------------------------------------------
# TraceBuffer mechanics
# ----------------------------------------------------------------------
def test_buffer_layout_and_sentinels():
    _, process = fresh_process()
    buf = TraceBuffer.allocate(process, index=0, sub_count=3, sub_size=8)
    for sub in range(3):
        assert buf.mapped.words[buf.sub_end(sub)] == SENTINEL
    assert buf.sub_start(0) == HEADER_WORDS
    assert buf.sub_of(buf.sub_start(2)) == 2


def test_wrap_commits_and_zeroes_next():
    _, process = fresh_process()
    buf = TraceBuffer.allocate(process, index=0, sub_count=2, sub_size=4)
    # Dirty sub-buffer 1, then wrap out of sub-buffer 0.
    for rel in range(buf.sub_start(1), buf.sub_end(1)):
        buf.mapped.words[rel] = 0xDEAD
    slot = buf.wrap_from(buf.sub_end(0))
    assert buf.last_committed == 0
    assert buf.commit_count == 1
    assert slot == buf.sub_start(1)
    for rel in range(buf.sub_start(1), buf.sub_end(1)):
        assert buf.mapped.words[rel] == 0
    assert buf.mapped.words[buf.sub_end(1)] == SENTINEL


def test_full_wrap_cycles_to_first_sub_buffer():
    _, process = fresh_process()
    buf = TraceBuffer.allocate(process, index=0, sub_count=2, sub_size=4)
    slot = buf.wrap_from(buf.sub_end(1))
    assert slot == buf.sub_start(0)


def test_append_never_straddles_sentinel():
    _, process = fresh_process()
    buf = TraceBuffer.allocate(process, index=0, sub_count=2, sub_size=6)
    cursor = buf.sub_start(0) - 1
    big = ExtRecord(kind=ExtKind.SYNC, inline=1, payload=(1, 2, 3))  # 5 words
    cursor = buf.append(cursor, big)
    # A second big record can't fit before sub 0's sentinel: it must
    # land at the start of sub 1.
    cursor = buf.append(cursor, big)
    assert buf.sub_of(cursor) == 1
    assert buf.commit_count == 1


def test_probation_buffer_is_sentinel_only():
    _, process = fresh_process()
    probation = TraceBuffer.probation(process)
    assert probation.flags & BufferFlags.PROBATION
    assert probation.mapped.words[probation.sub_start(0)] == SENTINEL


# ----------------------------------------------------------------------
# Runtime buffer management
# ----------------------------------------------------------------------
COUNT_SRC = """
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 200; i = i + 1) {
        total = total + i;
    }
    print_int(total);
    return 0;
}
"""


def traced_run(config: RuntimeConfig, src: str = COUNT_SRC, threads_src=None):
    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process, config)
    result = instrument_module(compile_source(threads_src or src, "t"))
    process.load_module(result.module)
    process.start()
    status = machine.run(max_cycles=20_000_000)
    return machine, process, runtime, status


def test_first_probe_leaves_probation():
    _, process, runtime, status = traced_run(RuntimeConfig())
    assert status == "done"
    assert runtime.stats.wraps >= 1  # at least the probation trap
    assert runtime.stats.threads_seen == 1


def test_small_buffers_wrap_repeatedly():
    config = RuntimeConfig(sub_buffer_words=16, sub_buffers=2, main_buffers=1)
    _, process, runtime, _ = traced_run(config)
    assert runtime.stats.sub_wraps > 0
    assert runtime.stats.full_wraps > 0
    assert process.output == ["19900"]


THREADED_SRC = """
int work(int arg) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 50; i = i + 1) { acc = acc + arg; }
    exit_thread(acc);
    return 0;
}
int main() {
    int t;
    for (t = 0; t < 5; t = t + 1) {
        thread_create(work, t);
    }
    sleep(100000);
    print_int(99);
    return 0;
}
"""


def test_threads_beyond_pool_use_desperation():
    config = RuntimeConfig(
        sub_buffer_words=64, sub_buffers=2, main_buffers=1, max_buffers=2
    )
    _, process, runtime, status = traced_run(config, threads_src=THREADED_SRC)
    assert status == "done"
    assert runtime.stats.desperation_entries > 0
    assert process.output == ["99"]


def test_buffers_grow_up_to_cap():
    config = RuntimeConfig(
        sub_buffer_words=64, sub_buffers=2, main_buffers=1, max_buffers=8
    )
    _, _, runtime, _ = traced_run(config, threads_src=THREADED_SRC)
    assert runtime.stats.buffers_allocated > 1
    assert runtime.stats.desperation_entries == 0


def test_buffer_reuse_after_thread_exit():
    """Sequentially created threads pack into the same buffer (§3.1.2)."""
    src = """
int work(int arg) {
    print_int(arg);
    exit_thread(0);
    return 0;
}
int main() {
    int t;
    for (t = 0; t < 4; t = t + 1) {
        thread_create(work, t);
        sleep(20000);
    }
    sleep(50000);
    return 0;
}
"""
    # Two buffers: one for main, one shared sequentially by the workers.
    config = RuntimeConfig(
        sub_buffer_words=128, sub_buffers=2, main_buffers=2, max_buffers=2
    )
    _, process, runtime, _ = traced_run(config, threads_src=src)
    assert sorted(process.output) == ["0", "1", "2", "3"]
    assert runtime.stats.buffers_reused >= 3


def test_fail_dynamic_buffers_uses_static():
    config = RuntimeConfig(fail_dynamic_buffers=True, static_buffer_words=32)
    _, process, runtime, status = traced_run(config)
    assert status == "done"
    assert process.output == ["19900"]  # tracing degraded, program fine


def test_scavenge_reclaims_killed_thread_buffers():
    machine = Machine()
    process = machine.create_process("t")
    config = RuntimeConfig(sub_buffer_words=64, sub_buffers=2, main_buffers=2)
    runtime = TraceBackRuntime(process, config)
    result = instrument_module(compile_source(THREADED_SRC, "t"))
    process.load_module(result.module)
    process.start()
    machine.run(max_cycles=300_000)
    # Simulate threads that died without notifying: mark them killed.
    for thread in process.threads.values():
        if thread.tid != 0 and thread.alive():
            thread.kill()
    reclaimed = runtime.scavenge()
    assert reclaimed >= 0  # no crash; buffers with dead owners freed
    for buf in runtime._assignment.values():
        owner = process.threads[buf.owner_tid]
        assert owner.alive()
