"""Graceful detach must persist the write cursor (header word 8).

The paper's buffers are memory-mapped files precisely so the trace
survives the process: on a *graceful* event the runtime records where
writing stopped, and a later reattach (or offline recovery) resumes from
that word.  Two historical gaps are pinned down here:

* ``TraceBuffer.allocate`` initialized word 8 to ``0`` while everything
  else (buffer reuse, scavenging, thread exit) treats
  ``sub_start(0) - 1`` as the canonical "no records yet" cursor;
* a graceful *process* exit (HALT / ``EXIT_PROCESS``) stopped the
  remaining threads without the per-thread exit path, leaving their
  buffers' word 8 stale.
"""

from __future__ import annotations

from repro.instrument import InstrumentConfig, instrument_module
from repro.lang.minic import compile_source
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.runtime.buffers import SENTINEL, TraceBuffer
from repro.runtime.records import ExtKind, ExtRecord, INVALID
from repro.vm import Machine
from repro.vm.machine import ExitState

SOURCE = """
int spin[1];

int work(int n) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + i * 3;
    }
    return acc;
}

int worker(int arg) {
    while (1) {
        spin[0] = spin[0] + work(5);
        yield();
    }
    return 0;
}

int main() {
    thread_create(worker, 0);
    print_int(work(40));
    sleep(2000);
    exit(0);
    return 0;
}
"""


def _graceful_traced_run():
    machine = Machine()
    process = machine.create_process("app")
    runtime = TraceBackRuntime(process, RuntimeConfig(main_buffers=4))
    module = instrument_module(
        compile_source(SOURCE, "app"), InstrumentConfig()
    ).module
    process.load_module(module)
    process.start()
    status = machine.run(max_cycles=5_000_000)
    assert status == "done"
    assert process.exit_state == ExitState.EXITED
    return process, runtime


def test_fresh_buffer_reports_canonical_empty_cursor():
    """allocate() must agree with the reuse/scavenge convention that an
    untouched buffer's cursor is one before the first record slot."""
    machine = Machine()
    process = machine.create_process("p")
    buf = TraceBuffer.allocate(process, index=0, sub_count=2, sub_size=16)
    assert buf.write_cursor == buf.sub_start(0) - 1


def test_graceful_process_exit_persists_cursor():
    """``exit(0)`` stops main *and* the still-attached worker without
    the per-thread exit path; both buffers' header word 8 must point at
    the last record word each thread actually wrote."""
    process, runtime = _graceful_traced_run()
    assert len(process.threads) == 2
    checked = 0
    for thread in process.threads.values():
        buf = runtime.buffer_of_thread(thread)
        if buf is None or buf.flags:
            continue
        checked += 1
        cursor = buf.write_cursor
        # The cursor matches the thread's live TLS trace pointer...
        assert cursor == buf.to_rel(thread.tls[runtime.config.trace_slot])
        # ...real records were written...
        assert cursor > buf.sub_start(0) - 1
        words = buf.mapped.words
        assert words[cursor] not in (INVALID, SENTINEL)
        # ...and every slot after it (up to the sub-buffer sentinel) is
        # still invalid: the cursor is exactly the last written word.
        for rel in range(cursor + 1, buf.sub_end(buf.sub_of(cursor))):
            assert words[rel] == INVALID
    assert checked == 2


def test_reattach_round_trip_appends_after_persisted_cursor():
    """Reattach from nothing but the mapped file: rebuild the buffer
    view from its header, resume at the persisted cursor, and append."""
    process, runtime = _graceful_traced_run()
    old = runtime.buffer_of_thread(process.threads[0])

    words = old.mapped.words
    reattached = TraceBuffer(
        index=words[1],
        base=old.base,
        mapped=old.mapped,
        sub_count=words[2],
        sub_size=words[3],
        flags=words[7],
    )
    assert reattached.write_cursor == old.write_cursor

    # Append continues where the detached writer stopped.
    slot = reattached.write_cursor + 1
    if words[slot] == SENTINEL:
        slot = reattached.wrap_from(slot)
    marker = ExtRecord(ExtKind.SNAP_MARK, inline=0x1234)
    words[slot] = marker.encode()[0]
    reattached.write_cursor = slot

    assert words[reattached.write_cursor] == marker.encode()[0]
    # The pre-existing trace is untouched up to the old cursor.
    assert words[old.write_cursor] not in (INVALID, SENTINEL)
