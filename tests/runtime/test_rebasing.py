"""DAG rebasing, bad-DAG fallback, range reuse, TLS rewriting (§2.3, §2.5)."""

from repro.instrument import DagBaseFile, InstrumentConfig, instrument_module
from repro.isa import Op, decode
from repro.lang.minic import compile_source
from repro.runtime import (
    BAD_DAG_ID,
    DagAllocator,
    RuntimeConfig,
    TraceBackRuntime,
    rewrite_tls_slots,
)
from repro.vm import Machine

MOD_A = """
int alpha() { return 1; }
int main() { print_int(alpha()); return 0; }
"""
MOD_B = """
int beta(int x) { return x + 1; }
"""


def make_instrumented(src: str, name: str, dag_base: int = 16):
    return instrument_module(
        compile_source(src, name), InstrumentConfig(dag_base=dag_base)
    )


def loaded_dag_ids(loaded) -> set[int]:
    seg = loaded.segments[0]
    return {
        decode(seg.words[o]).imm for o in loaded.module.dag_fixups
    }


def test_first_module_keeps_default_base():
    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process)
    result = make_instrumented(MOD_A, "a")
    loaded = process.load_module(result.module)
    ids = loaded_dag_ids(loaded)
    assert min(ids) == 16


def test_conflicting_module_is_rebased():
    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process)
    la = process.load_module(make_instrumented(MOD_A, "a").module)
    lb = process.load_module(make_instrumented(MOD_B, "b").module)
    ids_a = loaded_dag_ids(la)
    ids_b = loaded_dag_ids(lb)
    assert not ids_a & ids_b
    assert runtime.allocator.rebase_count == 1


def test_rebased_program_still_runs_and_traces():
    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process)
    app = """
extern int beta(int x);
int main() { print_int(beta(41)); return 0; }
"""
    process.load_module(make_instrumented(MOD_B, "b").module)
    process.load_module(make_instrumented(app, "app").module)
    process.start("app")
    assert machine.run(max_cycles=5_000_000) == "done"
    assert process.output == ["42"]


def test_reload_reuses_same_range():
    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process)
    result = make_instrumented(MOD_B, "b")
    loaded1 = process.load_module(result.module)
    rng1 = runtime.allocator.by_checksum[result.module.checksum()]
    process.unload_module(loaded1)
    loaded2 = process.load_module(result.module)
    rng2 = runtime.allocator.by_checksum[result.module.checksum()]
    assert rng1.base == rng2.base
    assert len(runtime.allocator.by_checksum) == 1  # no id-space leak


def test_exhausted_id_space_uses_bad_dag():
    machine = Machine()
    process = machine.create_process("t")
    result_a = make_instrumented(MOD_A, "a", dag_base=0)
    # Room for module a only: module b cannot fit anywhere.
    config = RuntimeConfig(max_dag_id=result_a.module.dag_count + 1)
    runtime = TraceBackRuntime(process, config)
    la = process.load_module(result_a.module)
    lb = process.load_module(make_instrumented(MOD_B, "b", dag_base=0).module)
    assert runtime.allocator.bad_count == 1
    assert loaded_dag_ids(lb) == {BAD_DAG_ID}
    # Module a's range is intact: its trace remains recoverable.
    assert BAD_DAG_ID not in loaded_dag_ids(la)


def test_bad_dag_module_still_executes():
    machine = Machine()
    process = machine.create_process("t")
    config = RuntimeConfig(max_dag_id=1)
    TraceBackRuntime(process, config)
    process.load_module(make_instrumented(MOD_A, "a").module)
    process.start()
    assert machine.run(max_cycles=5_000_000) == "done"
    assert process.output == ["1"]


def test_dagbase_file_preassigns_ranges():
    machine = Machine()
    process = machine.create_process("t")
    dagbase = DagBaseFile.parse("a 100\nb 300\n")
    runtime = TraceBackRuntime(process, RuntimeConfig(dagbase=dagbase))
    la = process.load_module(make_instrumented(MOD_A, "a").module)
    lb = process.load_module(make_instrumented(MOD_B, "b").module)
    assert min(loaded_dag_ids(la)) == 100
    assert min(loaded_dag_ids(lb)) == 300


def test_allocator_first_fit_fills_gaps():
    allocator = DagAllocator(max_dag_id=1000)
    assert allocator._first_fit(10) == 0


def test_tls_rewrite_moves_probe_slots():
    machine = Machine()
    process = machine.create_process("t")
    process.loader.register_host_function("__tb_buffer_wrap", lambda t: None)
    result = make_instrumented(MOD_A, "a")
    loaded = process.loader.load(result.module)
    count = rewrite_tls_slots(
        loaded, trace_slot=30, spill_slot=31,
        compiled_trace_slot=60, compiled_spill_slot=61,
    )
    assert count == len(result.module.tls_fixups)
    seg = loaded.segments[0]
    for offset in result.module.tls_fixups:
        assert decode(seg.words[offset]).imm in (30, 31)


def test_tls_rewrite_noop_when_slots_match():
    machine = Machine()
    process = machine.create_process("t")
    process.loader.register_host_function("__tb_buffer_wrap", lambda t: None)
    result = make_instrumented(MOD_A, "a")
    loaded = process.loader.load(result.module)
    assert rewrite_tls_slots(loaded, 60, 61, 60, 61) == 0


def test_alternate_tls_slot_end_to_end():
    """The runtime configured with different slots rewrites probes at
    load and the program still traces correctly (§2.5)."""
    machine = Machine()
    process = machine.create_process("t")
    config = RuntimeConfig(trace_slot=20, spill_slot=21)
    runtime = TraceBackRuntime(process, config)
    process.load_module(make_instrumented(MOD_A, "a").module)
    process.start()
    assert machine.run(max_cycles=5_000_000) == "done"
    assert process.output == ["1"]
    snap = runtime.snap_external("check")
    main_buffers = [b for b in snap.buffers if not b.flags]
    assert any(
        any(w >> 31 for w in b.words[10:]) for b in main_buffers
    )  # DAG records landed despite the moved slot
