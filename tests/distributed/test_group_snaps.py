"""Cross-machine group snaps (§3.6.1) over linked service processes."""

from repro.distributed import DistributedSession
from repro.runtime import RuntimeConfig, SnapPolicy

CRASHER = """
int main() {
    sleep(20000);
    int x;
    x = 1 / 0;
    return 0;
}
"""

BYSTANDER = """
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) {
        sleep(2000);
    }
    return 0;
}
"""


def test_group_snap_crosses_machines():
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    m1 = session.add_machine("front-box")
    m2 = session.add_machine("back-box", clock_skew=1_000_000)
    session.services[m1].link(session.services[m2])
    for service in session.services.values():
        service.configure_group("petstore", ["web", "db"])

    session.add_process(m1, "web", CRASHER, start=True)
    session.add_process(m2, "db", BYSTANDER, start=True)
    session.run()

    web_snaps = session.nodes["web"].runtime.snap_store.snaps
    db_snaps = session.nodes["db"].runtime.snap_store.snaps
    assert any(s.reason == "unhandled" for s in web_snaps)
    group = [s for s in db_snaps if s.reason == "group"]
    assert len(group) == 1
    assert group[0].detail["initiator"] == "web"
    assert group[0].detail["initiator_reason"] == "unhandled"
    assert group[0].machine_name == "back-box"


def test_group_snap_ignores_non_members():
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    m1 = session.add_machine("a")
    m2 = session.add_machine("b")
    session.services[m1].link(session.services[m2])
    for service in session.services.values():
        service.configure_group("g", ["web"])  # db is not a member

    session.add_process(m1, "web", CRASHER, start=True)
    session.add_process(m2, "db", BYSTANDER, start=True)
    session.run()
    db_snaps = session.nodes["db"].runtime.snap_store.snaps
    assert not [s for s in db_snaps if s.reason == "group"]


def test_group_snaps_do_not_cascade():
    """A group snap on the partner must not re-trigger the group."""
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    m1 = session.add_machine("a")
    m2 = session.add_machine("b")
    session.services[m1].link(session.services[m2])
    for service in session.services.values():
        service.configure_group("g", ["web", "db"])
    session.add_process(m1, "web", CRASHER, start=True)
    session.add_process(m2, "db", BYSTANDER, start=True)
    session.run()
    web_group = [
        s for s in session.nodes["web"].runtime.snap_store.snaps
        if s.reason == "group"
    ]
    assert not web_group  # the initiator is never group-snapped back
