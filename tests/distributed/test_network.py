"""Distributed substrate: cross-machine RPC, skewed clocks, stitching."""

from repro.distributed import DistributedSession, Network
from repro.reconstruct import render_logical
from repro.runtime.records import SyncKind
from repro.vm import ExcCode

CLIENT_SRC = """
int argbuf[1];
int retbuf[1];
int main() {
    argbuf[0] = 21;
    int status;
    status = rpc_call(7, argbuf, 1, retbuf, 1);
    print_int(status);
    print_int(retbuf[0]);
    return 0;
}
"""

SERVER_SRC = """
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    int value;
    value = peek(argaddr);
    poke(retaddr, value * 2);
    return 0;
}
"""


def build_pair(skew: int = 0, client_src: str = CLIENT_SRC,
               server_src: str = SERVER_SRC):
    session = DistributedSession()
    m1 = session.add_machine("client-box")
    m2 = session.add_machine("server-box", clock_skew=skew)
    session.add_process(m1, "client", client_src, start=True)
    session.add_process(m2, "server", server_src, services={7: "handle"})
    return session


def test_cross_machine_rpc_round_trip():
    session = build_pair()
    result = session.run()
    assert result.status == "done"
    client = session.nodes["client"].process
    assert client.output == ["0", "42"]
    assert session.network.rpc_count == 1


def test_rpc_to_missing_service_fails():
    session = DistributedSession()
    m1 = session.add_machine("solo")
    session.add_process(m1, "client", CLIENT_SRC, start=True)
    result = session.run()
    client = session.nodes["client"].process
    assert client.output[0] == str(ExcCode.RPC_SERVER_FAULT)


def test_four_sync_records_per_rpc():
    """§5.1: one RPC leaves four SYNC records with the same logical id
    and successive sequence numbers, split across two buffers."""
    session = build_pair()
    result = session.run()
    trace = result.reconstruct()
    syncs = [
        e
        for p in trace.processes
        for t in p.threads
        for e in t.sync_events()
    ]
    assert len(syncs) == 4
    logical_ids = {e.detail["logical_id"] for e in syncs}
    assert len(logical_ids) == 1
    seqs = sorted(e.detail["seq"] for e in syncs)
    assert seqs == [seqs[0], seqs[0] + 1, seqs[0] + 2, seqs[0] + 3]
    kinds = {e.detail["seq"]: e.detail["sync_kind"] for e in syncs}
    assert kinds[seqs[0]] == SyncKind.CALL_OUT
    assert kinds[seqs[1]] == SyncKind.ENTER
    assert kinds[seqs[2]] == SyncKind.EXIT
    assert kinds[seqs[3]] == SyncKind.RETURN


def test_logical_thread_fuses_caller_and_callee():
    session = build_pair()
    trace = session.run().reconstruct()
    assert len(trace.logical_threads) == 1
    logical = trace.logical_threads[0]
    legs = [seg.leg for seg in logical.segments]
    assert legs[0] == "caller"
    assert "callee" in legs
    assert legs[-1] == "caller"
    owners = {seg.trace.process_name for seg in logical.segments}
    assert owners == {"client", "server"}
    text = render_logical(logical)
    assert "client" in text and "server" in text


def test_callee_lines_between_caller_segments():
    """The fused trace shows server source lines causally between the
    client's call and its resumption."""
    session = build_pair()
    trace = session.run().reconstruct()
    logical = trace.logical_threads[0]
    sequence = []
    for owner, step in logical.steps():
        from repro.reconstruct import LineStep

        if isinstance(step, LineStep):
            sequence.append((owner.process_name, step.line))
    processes = [name for name, _ in sequence]
    first_server = processes.index("server")
    assert "client" in processes[:first_server]
    assert "client" in processes[first_server:]


def test_clock_skew_estimated_from_syncs():
    """§5.2: SYNC quadruples estimate the inter-runtime clock offset."""
    skew = 1_000_000
    session = build_pair(skew=skew)
    result = session.run()
    assert session.nodes["client"].process.output == ["0", "42"]
    trace = result.reconstruct()
    assert trace.skew_estimates
    ((pair, estimate),) = trace.skew_estimates.items()
    # The estimate reflects the configured skew to within RPC latency.
    assert abs(estimate - skew) < 100_000


def test_skew_estimate_near_zero_without_skew():
    session = build_pair(skew=0)
    trace = session.run().reconstruct()
    ((_, estimate),) = trace.skew_estimates.items()
    assert abs(estimate) < 100_000


def test_nested_rpc_chains_causality():
    """A -> B -> C: the logical thread passes through all three (§5.1's
    causality chain)."""
    front = """
int argbuf[1];
int retbuf[1];
int main() {
    argbuf[0] = 5;
    int status;
    status = rpc_call(1, argbuf, 1, retbuf, 1);
    print_int(retbuf[0]);
    return 0;
}
"""
    middle = """
int mbuf[1];
int mret[1];
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    mbuf[0] = peek(argaddr) + 1;
    int status;
    status = rpc_call(2, mbuf, 1, mret, 1);
    poke(retaddr, mret[0]);
    return 0;
}
"""
    back = """
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    poke(retaddr, peek(argaddr) * 10);
    return 0;
}
"""
    session = DistributedSession()
    m1 = session.add_machine("m1")
    m2 = session.add_machine("m2", clock_skew=500_000)
    m3 = session.add_machine("m3", clock_skew=-400_000)
    session.add_process(m1, "front", front, start=True)
    session.add_process(m2, "middle", middle, services={1: "handle"})
    session.add_process(m3, "back", back, services={2: "handle"})
    result = session.run()
    assert result.status == "done"
    assert session.nodes["front"].process.output == ["60"]
    trace = result.reconstruct()
    assert len(trace.logical_threads) == 1  # one causal chain
    owners = [seg.trace.process_name for seg in trace.logical_threads[0].segments]
    assert owners[0] == "front"
    assert "middle" in owners and "back" in owners
    # The chain's segments nest: back's work sits between middle's legs.
    assert owners.index("back") > owners.index("middle")


def test_network_detects_distributed_completion():
    network = Network()
    network.add_machine("a")
    network.add_machine("b")
    assert network.run(max_total_cycles=10_000) == "done"


# ----------------------------------------------------------------------
# Duplicate service registration: first-alive-wins, made visible
# ----------------------------------------------------------------------
def test_duplicate_rpc_service_first_alive_wins_and_is_counted():
    """Two processes serving one id: the earlier registration takes all
    traffic, and every such dispatch bumps ``duplicate_service``."""
    session = DistributedSession()
    m1 = session.add_machine("caller-box")
    m2 = session.add_machine("primary-box")
    m3 = session.add_machine("standby-box")
    session.add_process(m1, "client", CLIENT_SRC, start=True)
    primary = session.add_process(
        m2, "primary", SERVER_SRC, services={7: "handle"}
    )
    standby = session.add_process(
        m3, "standby", SERVER_SRC, services={7: "handle"}
    )
    result = session.run()
    assert result.status == "done"
    # The earlier registration answered; the standby never ran a thread.
    assert session.nodes["client"].process.output == ["0", "42"]
    assert session.network.duplicate_service == 1
    assert not standby.process.threads
    assert primary.process.threads


def test_duplicate_vault_service_registration_counted_and_shadowed():
    class FakeServer:
        def __init__(self, name, alive=True):
            self.name = name
            self.alive = alive

    network = Network()
    first = FakeServer("vault")
    second = FakeServer("vault")
    network.register_vault_service(first)
    assert network.duplicate_service == 0
    network.register_vault_service(second)
    # Registering under a live id is the misconfiguration; it is
    # counted once, and the earlier server keeps the traffic.
    assert network.duplicate_service == 1
    assert network.vault_service("vault") is first
    # The standby takes over only when every earlier server is dead.
    first.alive = False
    assert network.vault_service("vault") is second
    second.alive = False
    assert network.vault_service("vault") is None
    assert network.vault_service("other") is None
