"""Binary rewriter: semantics preservation, metadata remapping, probes."""

import pytest

from repro.instrument import (
    HELPER_NAME,
    InstrumentConfig,
    InstrumentError,
    instrument_module,
)
from repro.isa import Op, assemble, decode
from repro.lang.minic import compile_source
from repro.runtime import TraceBackRuntime
from repro.vm import Machine

FIB_SRC = """int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(12));
    return 0;
}
"""


def run_module(module, with_runtime: bool = False):
    machine = Machine()
    process = machine.create_process("t")
    if with_runtime:
        TraceBackRuntime(process)
    process.load_module(module)
    process.start()
    status = machine.run(max_cycles=20_000_000)
    return machine, process, status


def test_instrumented_module_computes_same_result():
    module = compile_source(FIB_SRC, "fib")
    _, base_proc, _ = run_module(module)
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    _, inst_proc, _ = run_module(result.module, with_runtime=True)
    assert inst_proc.output == base_proc.output == ["144"]


def test_instrumented_module_executes_more_instructions():
    module = compile_source(FIB_SRC, "fib")
    _, base_proc, _ = run_module(module)
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    _, inst_proc, _ = run_module(result.module, with_runtime=True)
    base = base_proc.threads[0].instructions
    inst = inst_proc.threads[0].instructions
    assert inst > base
    # The paper's text-growth ballpark: noticeable but bounded.
    assert inst < base * 3


def test_text_section_growth_reported():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    assert 1.1 < result.stats.size_growth < 3.0


def test_double_instrumentation_rejected():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    with pytest.raises(InstrumentError):
        instrument_module(result.module)


def test_helper_injected_and_recorded():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    module = result.module
    helper = module.func_named(HELPER_NAME)
    assert helper is not None
    assert decode(module.code[helper.start]).op is Op.TLSLD
    assert "__tb_buffer_wrap" in module.imports


def test_dag_fixups_point_at_stdag_words():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    module = result.module
    assert module.dag_fixups
    for offset in module.dag_fixups:
        assert decode(module.code[offset]).op is Op.STDAG


def test_tls_fixups_point_at_tls_words():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    module = result.module
    assert module.tls_fixups
    for offset in module.tls_fixups:
        assert decode(module.code[offset]).op in (Op.TLSLD, Op.TLSST)


def test_dag_ids_are_contiguous_from_base():
    config = InstrumentConfig(dag_base=100)
    result = instrument_module(compile_source(FIB_SRC, "fib"), config)
    ids = sorted(
        decode(result.module.code[o]).imm for o in result.module.dag_fixups
    )
    assert ids[0] == 100
    assert ids[-1] < 100 + result.module.dag_count


def test_exports_and_entry_remapped():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    module = result.module
    entry = module.entry_offset()
    # The entry points at main's header probe (a CALL to the helper).
    assert decode(module.code[entry]).op is Op.CALL


def test_line_table_remapped_monotonically():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    starts = [e.start for e in result.module.lines]
    assert starts == sorted(starts)


def test_handler_ranges_remapped():
    src = """
int main() {
    int e;
    try {
        throw 42;
    } catch (e) {
        print_int(e);
    }
    return 0;
}
"""
    module = compile_source(src, "t")
    result = instrument_module(module)
    _, process, _ = run_module(result.module, with_runtime=True)
    assert process.output == ["42"]


def test_spill_inserted_when_probe_register_live():
    src = """
    .entry main
    .func main
      movi r11, 1000
    top:
      addi r11, r11, -1
      bnz r11, top
      halt
    .endfunc
    """
    result = instrument_module(assemble(src))
    assert result.stats.spills >= 1
    _, process, status = run_module(result.module, with_runtime=True)
    assert status == "done"


def test_spilled_probe_preserves_program_value():
    src = """
    .entry main
    .func main
      movi r11, 5
      movi r0, 0
    top:
      add r0, r0, r11
      addi r11, r11, -1
      bnz r11, top
      sys 1
      halt
    .endfunc
    """
    result = instrument_module(assemble(src))
    _, process, _ = run_module(result.module, with_runtime=True)
    assert process.output == ["15"]


def test_il_mode_adds_more_probes():
    native = instrument_module(compile_source(FIB_SRC, "fib"))
    il = instrument_module(
        compile_source(FIB_SRC, "fib"), InstrumentConfig(mode="il")
    )
    native_probes = native.stats.header_probes + native.stats.light_probes
    il_probes = il.stats.header_probes + il.stats.light_probes
    assert il_probes > native_probes
    assert il.stats.catch_stubs == 2  # one per function (fib, main)


def test_il_mode_still_computes_same_result():
    il = instrument_module(
        compile_source(FIB_SRC, "fib"), InstrumentConfig(mode="il")
    )
    _, process, _ = run_module(il.module, with_runtime=True)
    assert process.output == ["144"]


def test_jump_table_through_instrumented_code():
    src = """
    .entry main
    .func main
      la r1, tab
      li r0, 1
      jtab r0, r1
    a:
      li r0, 100
      br out
    b:
      li r0, 200
      br out
    c:
      li r0, 300
    out:
      sys 1
      halt
    .endfunc
    .rodata
    tab: .addr a b c
    """
    result = instrument_module(assemble(src))
    _, process, _ = run_module(result.module, with_runtime=True)
    assert process.output == ["200"]


def test_mapfile_blocks_reference_valid_lines():
    result = instrument_module(compile_source(FIB_SRC, "fib"))
    mapfile = result.mapfile
    for dag in mapfile.dags:
        for block in dag.blocks:
            assert block.id <= block.body_start < block.end
            assert mapfile.func_at(block.id) is not None
