"""Property tests: path encode -> decode round trip over random CFGs.

The central correctness claim of DAG tiling (§2.1): for any control-flow
graph and any complete path through any of its DAGs, the path bits
written by the probes decode back to exactly that path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import CFG, BasicBlock
from repro.instrument import decode_path, encode_path, feasible_paths, tile
from repro.isa.module import FuncInfo, Module


def synthetic_cfg(
    n_blocks: int,
    forward_edges: list[tuple[int, int]],
    back_edges: list[tuple[int, int]],
    call_blocks: set[int],
) -> CFG:
    """Build a CFG object directly (tiling never looks at instructions)."""
    blocks = {
        i: BasicBlock(start=i, end=i + 1, instrs=[]) for i in range(n_blocks)
    }
    for src, dst in forward_edges + back_edges:
        if dst not in blocks[src].succs:
            blocks[src].succs.append(dst)
    for i in call_blocks:
        blocks[i].ends_with_call = True
        # A call block's only successor is its return point.
        blocks[i].succs = [s for s in blocks[i].succs][:1]
    for block in blocks.values():
        for succ in block.succs:
            blocks[succ].preds.append(block.start)
    module = Module(name="synthetic")
    func = FuncInfo(name="f", start=0, end=n_blocks)
    return CFG(module=module, func=func, blocks=blocks, entries=[0])


@st.composite
def cfg_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    forward = []
    for src in range(n - 1):
        # Every block (except maybe the last) gets 0-2 forward successors.
        available = n - 1 - src
        count = draw(st.integers(min_value=0, max_value=min(2, available)))
        targets = draw(
            st.lists(
                st.integers(min_value=src + 1, max_value=n - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        forward.extend((src, t) for t in targets)
        # Keep the graph connected-ish: always link to the next block
        # with probability via a drawn boolean.
        if draw(st.booleans()):
            forward.append((src, src + 1))
    n_back = draw(st.integers(min_value=0, max_value=2))
    back = []
    for _ in range(n_back):
        if n >= 2:
            src = draw(st.integers(min_value=1, max_value=n - 1))
            dst = draw(st.integers(min_value=0, max_value=src))
            back.append((src, dst))
    calls = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=2))
    return synthetic_cfg(n, list(dict.fromkeys(forward)), back, calls)


def _dag_succs(cfg: CFG, dag) -> dict:
    return {
        member: [
            s
            for s in cfg.blocks[member].succs
            if s in dag.members and s != dag.entry
        ]
        for member in dag.members
    }


@settings(max_examples=200, deadline=None)
@given(cfg_strategy())
def test_encode_decode_round_trip(cfg):
    """Every maximal path through every DAG survives encode -> decode."""
    plan = tile(cfg)
    for dag in plan.dags:
        succs = _dag_succs(cfg, dag)
        for path in feasible_paths(dag, succs, limit=200):
            bits = encode_path(dag, path)
            assert decode_path(dag, bits, succs) == path


@settings(max_examples=200, deadline=None)
@given(cfg_strategy())
def test_bit_budget_respected(cfg):
    plan = tile(cfg)
    for dag in plan.dags:
        assert dag.bits_used <= 11


@settings(max_examples=200, deadline=None)
@given(cfg_strategy())
def test_tiles_partition_blocks(cfg):
    """Every block lands in exactly one DAG."""
    plan = tile(cfg)
    seen: set[int] = set()
    for dag in plan.dags:
        for member in dag.members:
            assert member not in seen
            seen.add(member)
    assert seen == set(cfg.blocks)


@settings(max_examples=200, deadline=None)
@given(cfg_strategy())
def test_dags_are_acyclic(cfg):
    """No DAG contains a cycle (retreating edges always leave the DAG
    or target its entry, which is excluded from in-DAG edges)."""
    plan = tile(cfg)
    for dag in plan.dags:
        succs = _dag_succs(cfg, dag)
        order = {member: i for i, member in enumerate(dag.members)}
        for member, targets in succs.items():
            for target in targets:
                assert order[target] > order[member], (
                    f"edge {member}->{target} violates topological order"
                )


@settings(max_examples=200, deadline=None)
@given(cfg_strategy())
def test_members_preds_inside_dag(cfg):
    """Non-entry members only have predecessors inside their own DAG —
    the invariant that makes lightweight probes attribute bits to the
    correct record."""
    plan = tile(cfg)
    for dag in plan.dags:
        for member in dag.members:
            if member == dag.entry:
                continue
            for pred in cfg.blocks[member].preds:
                assert plan.dag_of[pred] == dag.index
