"""DAG base files and mapfile persistence."""

import pytest

from repro.instrument import DagBaseError, DagBaseFile, instrument_module
from repro.lang.minic import compile_source


def test_parse_and_lookup():
    dagbase = DagBaseFile.parse(
        """
        # build-tree assignments
        apache   0x100
        mod_ssl  0x400
        """
    )
    assert dagbase.base_for("apache") == 0x100
    assert dagbase.base_for("mod_ssl") == 0x400
    assert dagbase.base_for("unknown") is None


def test_render_round_trip():
    dagbase = DagBaseFile({"a": 5, "b": 100})
    clone = DagBaseFile.parse(dagbase.render())
    assert clone.bases == dagbase.bases


def test_parse_rejects_bad_lines():
    with pytest.raises(DagBaseError):
        DagBaseFile.parse("too many words here")
    with pytest.raises(DagBaseError):
        DagBaseFile.parse("mod notanumber")
    with pytest.raises(DagBaseError):
        DagBaseFile.parse("mod 5\nmod 6")


def test_check_disjoint():
    dagbase = DagBaseFile({"a": 0, "b": 5})
    dagbase.check_disjoint({"a": 5, "b": 3})  # [0,5) and [5,8): fine
    with pytest.raises(DagBaseError, match="overlap"):
        dagbase.check_disjoint({"a": 6, "b": 3})


def test_save_load_file(tmp_path):
    dagbase = DagBaseFile({"core": 16})
    path = tmp_path / "dag.base"
    path.write_text(dagbase.render())
    assert DagBaseFile.load(str(path)).base_for("core") == 16


SRC = """
int helper(int x) { return x + 1; }
int main() { print_int(helper(41)); return 0; }
"""


def test_mapfile_save_load_round_trip(tmp_path):
    result = instrument_module(compile_source(SRC, "m"))
    path = tmp_path / "m.mapfile"
    result.mapfile.save(str(path))
    from repro.instrument import Mapfile

    clone = Mapfile.load(str(path))
    assert clone.checksum == result.mapfile.checksum
    assert clone.dag_count == result.mapfile.dag_count
    assert len(clone.dags) == len(result.mapfile.dags)
    for a, b in zip(clone.dags, result.mapfile.dags):
        assert a.entry == b.entry
        assert [blk.to_dict() for blk in a.blocks] == [
            blk.to_dict() for blk in b.blocks
        ]
    assert clone.lines == result.mapfile.lines


def test_mapfile_queries():
    result = instrument_module(compile_source(SRC, "m", file_name="m.c"))
    mapfile = result.mapfile
    dag0 = mapfile.dag_by_local_index(0)
    assert dag0 is not None
    assert mapfile.dag_by_local_index(10_000) is None
    assert mapfile.func_at(dag0.entry) is not None
    loc = mapfile.line_at(dag0.blocks[0].body_start)
    assert loc is not None and loc[0] == "m.c"


def test_mapfile_decode_rejects_nothing_silently():
    result = instrument_module(compile_source(SRC, "m"))
    dag = result.mapfile.dags[0]
    blocks = dag.decode(0)
    assert blocks[0].id == dag.entry
