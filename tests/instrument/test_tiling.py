"""DAG tiling: header placement rules and bit budgets (§2.1-2.2)."""

from repro.analysis import build_cfg
from repro.instrument import required_headers, tile
from repro.isa import assemble


def plan_for(src: str, func: str = "main", path_bits: int = 11):
    module = assemble(src)
    cfg = build_cfg(module, module.func_named(func))
    return cfg, tile(cfg, path_bits=path_bits)


def test_function_entry_is_header():
    _, plan = plan_for(".func main\n halt\n.endfunc")
    assert plan.block_probe[0][0] == "header"


def test_loop_contains_a_header():
    cfg, plan = plan_for(
        """
        .func main
          movi r0, 9
        top:
          addi r0, r0, -1
          bnz r0, top
          halt
        .endfunc
        """
    )
    assert plan.block_probe[1][0] == "header"


def test_call_return_point_is_header():
    cfg, plan = plan_for(
        """
        .func main
          call f
          halt
        .endfunc
        .func f
          ret
        .endfunc
        """
    )
    headers = required_headers(cfg)
    assert 1 in headers  # the block after the call
    assert plan.block_probe[1][0] == "header"


def test_multiway_targets_are_headers():
    cfg, plan = plan_for(
        """
        .func main
          la r1, tab
          jtab r0, r1
        a: halt
        b: halt
        .endfunc
        .rodata
        tab: .addr a b
        """
    )
    assert plan.block_probe[3][0] == "header"
    assert plan.block_probe[4][0] == "header"


def test_handler_entry_is_header():
    _, plan = plan_for(
        """
        .func main
        t0:
          movi r0, 1
        t1:
          halt
        h:
          halt
        .handler t0 t1 h
        .endfunc
        """
    )
    assert plan.block_probe[2][0] == "header"


def test_diamond_shares_one_dag():
    cfg, plan = plan_for(
        """
        .func main
          bz r0, right
          movi r1, 1
          br join
        right:
          movi r1, 2
        join:
          halt
        .endfunc
        """
    )
    dags = {plan.dag_of[b] for b in cfg.blocks}
    assert len(dags) == 1
    # Branch sides get bits; the join has two preds so it needs one too.
    kinds = {b: plan.block_probe[b][0] for b in cfg.blocks}
    assert kinds[0] == "header"
    assert kinds[1] == "light"
    assert kinds[3] == "light"
    assert kinds[4] == "light"


def test_unconditional_chain_is_implied():
    cfg, plan = plan_for(
        """
        .func main
          bz r0, side       ; makes a second block genuine
          br next
        side:
          br next2
        next:
          br next2
        next2:
          halt
        .endfunc
        """
    )
    # 'next' is the unique successor of unconditional block 1: implied.
    # 'next2' has two predecessors: it needs a bit.
    assert plan.block_probe[3][0] == "none"
    assert plan.block_probe[4][0] == "light"


def test_implied_block_after_unconditional():
    cfg, plan = plan_for(
        """
        .func main
          movi r0, 1
          br only
        only:
          halt
        .endfunc
        """
    )
    # 'only' is the unique successor of an unconditional block: implied.
    assert plan.block_probe[2][0] == "none"


def test_bit_budget_forces_new_dag():
    # A long if-chain consumes one bit per join/side; with a tiny budget
    # the tiler must promote blocks to headers instead of overflowing.
    lines = [".func main"]
    for i in range(8):
        lines += [f"  bz r0, L{i}", f"L{i}:"]
    lines += ["  halt", ".endfunc"]
    cfg, plan = plan_for("\n".join(lines), path_bits=3)
    for dag in plan.dags:
        assert dag.bits_used <= 3
    assert len(plan.dags) > 1


def test_every_block_is_assigned():
    cfg, plan = plan_for(
        """
        .func main
          bz r0, a
          call f
          br b
        a:
          movi r1, 2
        b:
          halt
        .endfunc
        .func f
          ret
        .endfunc
        """
    )
    for block in cfg.blocks:
        assert block in plan.dag_of
        assert block in plan.block_probe


def test_dag_members_acyclic():
    cfg, plan = plan_for(
        """
        .func main
          movi r0, 5
        outer:
          movi r1, 5
        inner:
          addi r1, r1, -1
          bnz r1, inner
          addi r0, r0, -1
          bnz r0, outer
          halt
        .endfunc
        """
    )
    # No DAG may contain a retreating edge: entries of loops are headers.
    for dag in plan.dags:
        for member in dag.members:
            for succ in cfg.blocks[member].succs:
                if succ in dag.members and succ != dag.entry:
                    # Forward edge within the DAG: fine.  An edge to the
                    # entry would be a cycle.
                    assert cfg.reverse_postorder().index(succ) > \
                        cfg.reverse_postorder().index(member)
