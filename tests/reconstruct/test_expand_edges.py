"""Expansion edge paths: bad DAGs, unknown ids, IL trimming, sync order."""

from repro.instrument import instrument_module
from repro.lang.minic import compile_source
from repro.reconstruct import Reconstructor
from repro.reconstruct.expand import ModuleIndex, expand_span
from repro.reconstruct.recovery import ThreadSpan
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.runtime.records import BAD_DAG_ID, DagRecord
from repro.runtime.snap import SnapFile
from repro.vm import Machine


def snap_and_mapfile(src: str, runtime_config=None, mode="native"):
    from repro.instrument import InstrumentConfig

    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process, runtime_config or RuntimeConfig())
    result = instrument_module(
        compile_source(src, "t", bounds_checks=(mode == "il")),
        InstrumentConfig(mode=mode),
    )
    process.load_module(result.module)
    process.start()
    machine.run(max_cycles=10_000_000)
    return runtime.build_snap("test", {}), result.mapfile


SIMPLE = "int main() { print_int(3); return 0; }"


def _index(snap: SnapFile, mapfile) -> ModuleIndex:
    return ModuleIndex.build(snap, [mapfile])


def test_bad_dag_records_become_untraced_events():
    snap, mapfile = snap_and_mapfile(SIMPLE)
    span = ThreadSpan(buffer_index=0, tid=0,
                      records=[DagRecord(BAD_DAG_ID, 0)])
    trace = expand_span(span, _index(snap, mapfile), snap)
    events = trace.events("untraced")
    assert events and events[0].detail["why"] == "bad-dag"


def test_unknown_dag_id_reported_not_crashed():
    snap, mapfile = snap_and_mapfile(SIMPLE)
    span = ThreadSpan(buffer_index=0, tid=0,
                      records=[DagRecord(0xABCDE, 0)])
    trace = expand_span(span, _index(snap, mapfile), snap)
    events = trace.events("untraced")
    assert events and events[0].detail["why"] == "unknown-dag"
    assert events[0].detail["dag_id"] == 0xABCDE


def test_mapfile_without_matching_snap_module_is_ignored():
    snap, mapfile = snap_and_mapfile(SIMPLE)
    other_snap, other_mapfile = snap_and_mapfile(
        "int main() { print_int(9); return 0; }"
    )
    # Reconstruct the first snap offering only the *other* mapfile: the
    # checksums don't match, so every DAG is unknown but nothing crashes.
    trace = Reconstructor([other_mapfile]).reconstruct(snap)
    thread = trace.threads[-1]
    assert not thread.line_steps()
    assert thread.events("untraced")


def test_native_mode_trims_by_fault_address():
    src = """int main() {
    int a;
    int b;
    a = 1;
    b = 2;
    a = a / (b - 2);
    b = 99;
    return 0;
}
"""
    snap, mapfile = snap_and_mapfile(src)
    trace = Reconstructor([mapfile]).reconstruct(snap)
    lines = [s.line for s in trace.threads[-1].line_steps()]
    assert 6 in lines
    assert 7 not in lines  # trimmed by the exception address


def test_il_mode_blocks_already_line_granular():
    src = """int main() {
    int a;
    int b;
    a = 1;
    b = 2;
    a = a / (b - 2);
    b = 99;
    return 0;
}
"""
    snap, mapfile = snap_and_mapfile(src, mode="il")
    assert mapfile.mode == "il"
    trace = Reconstructor([mapfile]).reconstruct(snap)
    lines = [s.line for s in trace.threads[-1].line_steps()]
    assert 6 in lines and 7 not in lines


def test_multiple_modules_resolve_by_actual_ranges():
    """After rebasing, records resolve through the *actual* (rebased)
    ranges recorded in the snap, not the compiled defaults."""
    machine = Machine()
    process = machine.create_process("t")
    runtime = TraceBackRuntime(process)
    lib = instrument_module(
        compile_source("int inc(int x) { return x + 1; }", "lib")
    )
    app = instrument_module(
        compile_source(
            "extern int inc(int x);\n"
            "int main() { print_int(inc(41)); return 0; }",
            "app",
        )
    )
    process.load_module(lib.module)
    process.load_module(app.module)  # rebased at load
    process.start("app")
    machine.run(max_cycles=5_000_000)
    assert process.output == ["42"]
    snap = runtime.build_snap("end", {})
    trace = Reconstructor([lib.mapfile, app.mapfile]).reconstruct(snap)
    modules = {s.module for s in trace.threads[-1].line_steps()}
    assert modules == {"lib", "app"}
