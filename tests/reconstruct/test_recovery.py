"""Record recovery (§4.1): mining, sub-buffer ordering, thread splitting."""

import pytest

from repro.reconstruct import (
    RecoveryError,
    mine_buffer,
    recover_spans,
    split_by_thread,
    sub_buffer_order,
    verify_buffer,
)
from repro.runtime import BufferFlags, TraceBuffer
from repro.runtime.buffers import HEADER_WORDS
from repro.runtime.records import DagRecord, ExtKind, ExtRecord
from repro.runtime.snap import BufferDump
from repro.vm import Machine


def fresh_buffer(sub_count=2, sub_size=8, flags=0):
    machine = Machine()
    process = machine.create_process("t")
    return TraceBuffer.allocate(
        process, index=0, sub_count=sub_count, sub_size=sub_size, flags=flags
    )


def dump_of(buf: TraceBuffer) -> BufferDump:
    return BufferDump(
        index=buf.index,
        flags=buf.flags,
        base=buf.base,
        sub_count=buf.sub_count,
        sub_size=buf.sub_size,
        owner_tid=buf.owner_tid,
        words=buf.snapshot(),
    )


def test_verify_rejects_bad_magic():
    buf = fresh_buffer()
    buf.mapped.words[0] = 0xBAD
    with pytest.raises(RecoveryError, match="magic"):
        verify_buffer(dump_of(buf))


def test_verify_rejects_truncated_dump():
    buf = fresh_buffer()
    dump = dump_of(buf)
    dump.words = dump.words[:-1]
    with pytest.raises(RecoveryError):
        verify_buffer(dump)


def test_sub_buffer_order_no_commits():
    buf = fresh_buffer(sub_count=3)
    order = sub_buffer_order(dump_of(buf))
    assert order == [1, 2, 0]  # current sub (0) last


def test_sub_buffer_order_after_commit():
    buf = fresh_buffer(sub_count=3)
    buf.commit_sub(0)  # now filling sub 1
    assert sub_buffer_order(dump_of(buf)) == [2, 0, 1]


def test_mine_empty_buffer():
    assert mine_buffer(dump_of(fresh_buffer())) == []


def test_mine_collects_across_sub_buffers():
    buf = fresh_buffer(sub_count=2, sub_size=6)
    cursor = buf.sub_start(0) - 1
    records = [ExtRecord(ExtKind.TIMESTAMP, inline=i) for i in range(8)]
    for record in records:
        cursor = buf.append(cursor, record)
    mined = mine_buffer(dump_of(buf))
    # Wrapping may have discarded the oldest sub-buffer's records, but
    # what remains is a suffix of what was written, in order.
    assert mined == records[len(records) - len(mined):]
    assert len(mined) >= 4


def test_split_by_thread_simple_lifetimes():
    buf = fresh_buffer(sub_count=1, sub_size=32)
    cursor = buf.sub_start(0) - 1
    seq = [
        ExtRecord(ExtKind.THREAD_START, inline=0, payload=(5, 0, 0)),
        DagRecord(1, 0),
        ExtRecord(ExtKind.THREAD_END, inline=0, payload=(5, 0, 0)),
        ExtRecord(ExtKind.THREAD_START, inline=0, payload=(9, 0, 0)),
        DagRecord(2, 0),
    ]
    for record in seq:
        cursor = buf.append(cursor, record)
    buf.owner_tid = 9
    spans = split_by_thread(dump_of(buf), mine_buffer(dump_of(buf)))
    assert [s.tid for s in spans] == [5, 9]
    assert spans[0].has_start and spans[0].has_end
    assert spans[1].has_start and not spans[1].has_end
    assert not spans[0].truncated


def test_anonymous_leading_span_gets_owner():
    """A wrapped buffer whose THREAD_START was overwritten attributes
    the surviving records to the current owner."""
    buf = fresh_buffer(sub_count=1, sub_size=32)
    cursor = buf.sub_start(0) - 1
    cursor = buf.append(cursor, ExtRecord(ExtKind.TIMESTAMP, inline=1))
    buf.owner_tid = 7
    spans = split_by_thread(dump_of(buf), mine_buffer(dump_of(buf)))
    assert len(spans) == 1
    assert spans[0].tid == 7
    assert spans[0].truncated


def test_anonymous_span_closed_by_end_uses_end_tid():
    buf = fresh_buffer(sub_count=1, sub_size=32)
    cursor = buf.sub_start(0) - 1
    cursor = buf.append(cursor, DagRecord(3, 0))
    cursor = buf.append(
        cursor, ExtRecord(ExtKind.THREAD_END, inline=0, payload=(4, 0, 0))
    )
    buf.owner_tid = None
    spans = split_by_thread(dump_of(buf), mine_buffer(dump_of(buf)))
    assert spans[0].tid == 4


def test_recover_spans_skips_shared_buffers():
    buf = fresh_buffer(flags=BufferFlags.SHARED)
    cursor = buf.sub_start(0) - 1
    buf.append(cursor, DagRecord(1, 0))
    spans, notes = recover_spans([dump_of(buf)])
    assert spans == []
    assert notes and "desperation" in notes[0]


def test_recover_spans_skips_probation():
    machine = Machine()
    process = machine.create_process("t")
    probation = TraceBuffer.probation(process)
    spans, notes = recover_spans([dump_of(probation)])
    assert spans == [] and notes == []


def test_backward_mining_agrees_on_real_traces():
    """§4.1's back-to-front mining recovers exactly what the forward
    scan does, on buffers produced by a real traced run."""
    from repro import trace_program
    from repro.reconstruct import mine_buffer_backward

    run = trace_program(
        """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(12));
    int z;
    z = 1 / 0;
    return 0;
}
"""
    )
    assert run.snap is not None
    checked = 0
    for dump in run.snap.buffers:
        if dump.flags:
            continue
        forward = mine_buffer(dump)
        backward = mine_buffer_backward(dump)
        assert forward == backward
        if forward:
            checked += 1
    assert checked >= 1
