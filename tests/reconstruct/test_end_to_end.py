"""End-to-end reconstruction: crash, hang, kill -9, multi-thread (§4)."""

from repro import TraceSession, trace_program
from repro.reconstruct import (
    LineStep,
    Reconstructor,
    render_flat,
    render_multithread,
    render_tree,
    select_view,
    step_back_over,
    step_out,
    step_over,
)
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.vm import Signal

CRASH_SRC = """int helper(int d) {
    return 100 / d;
}
int main() {
    int x;
    x = helper(5);
    print_int(x);
    x = helper(0);
    print_int(x);
    return 0;
}
"""


def crash_run():
    return trace_program(CRASH_SRC, name="app")


def line_numbers(trace):
    return [s.line for s in trace.line_steps()]


def test_crash_trace_ends_at_faulting_line():
    run = crash_run()
    trace = run.trace()
    thread = trace.threads[-1]
    # The last executed line is the faulting line inside helper.
    last = thread.line_steps()[-1]
    assert last.line == 2 and last.func == "helper"
    exc = thread.events("exception")[-1]
    assert exc.detail["line"] == 2
    assert exc.detail["func"] == "helper"


def test_crash_trace_shows_successful_call_first():
    run = crash_run()
    thread = run.trace().threads[-1]
    lines = line_numbers(thread)
    # First call succeeded: lines 1,2 of helper appear before line 7.
    assert 2 in lines and 7 in lines
    assert lines.index(2) < lines.index(7)


def test_exception_trimming_cuts_partial_block():
    """Lines after the faulting statement never appear (§4.2)."""
    src = """int main() {
    int a;
    int b;
    a = 7;
    b = a / 0;
    a = 99;
    print_int(a);
    return 0;
}
"""
    run = trace_program(src)
    thread = run.trace().threads[-1]
    lines = line_numbers(thread)
    assert 5 in lines
    assert 6 not in lines and 7 not in lines


def test_exception_in_callee_keeps_call_line_last():
    run = crash_run()
    thread = run.trace().threads[-1]
    main_lines = [
        s.line for s in thread.line_steps() if s.func == "main"
    ]
    assert main_lines[-1] == 8


def test_kill_nine_trace_survives():
    """The kill -9 headline: buffers outlive the process; reconstruction
    still produces the history."""
    session = TraceSession()
    session.add_minic(
        """int main() {
    int i;
    for (i = 0; i < 1000000; i = i + 1) {
        yield();
    }
    return 0;
}
""",
        name="app",
    )
    session.process.start("app")
    session.machine.run(max_cycles=100_000)
    session.process.post_signal(Signal.KILL)
    assert session.process.exit_state == "killed"
    # The host (here: the test) copies the mapped buffers post mortem.
    snap = session.runtime.build_snap("external", {"how": "post-mortem"})
    trace = Reconstructor(session.mapfiles).reconstruct(snap)
    thread = trace.threads[-1]
    assert thread.tid == 0
    assert len(thread.line_steps()) > 10
    assert any(s.line == 4 for s in thread.line_steps())  # the yield line


def test_hang_view_shows_blocked_threads():
    src = """int worker(int arg) {
    lock(2);
    sleep(500);
    lock(1);
    return 0;
}
int main() {
    thread_create(worker, 0);
    lock(1);
    sleep(500);
    lock(2);
    return 0;
}
"""
    session = TraceSession(
        runtime_config=RuntimeConfig(policy=SnapPolicy.parse("snap on hang"))
    )
    session.add_minic(src, name="app")
    run = session.run(max_cycles=5_000_000)
    assert run.status == "stalled"
    view = run.view()
    assert "hang" in view
    assert view.count("thread") >= 2


def test_multithread_interleaving_respects_anchors():
    src = """int worker(int arg) {
    int i;
    for (i = 0; i < 3; i = i + 1) {
        sleep(5000);
    }
    exit_thread(0);
    return 0;
}
int main() {
    thread_create(worker, 1);
    int j;
    for (j = 0; j < 3; j = j + 1) {
        sleep(5000);
    }
    sleep(50000);
    return 0;
}
"""
    session = TraceSession()
    session.add_minic(src, name="app")
    run = session.run()
    snap = run.runtime.snap_external("end")
    trace = Reconstructor(run.mapfiles).reconstruct(snap)
    tids = {t.tid for t in trace.threads}
    assert tids >= {0, 1}
    merged = render_multithread(trace.threads)
    assert "T0" in merged and "T1" in merged


def test_render_flat_with_sources():
    run = crash_run()
    thread = run.trace().threads[-1]
    sources = {"app.c": CRASH_SRC.splitlines()}
    text = render_flat(thread, sources=sources)
    assert "100 / d" in text  # source pane content inlined


def test_stepping_operations():
    run = crash_run()
    thread = run.trace().threads[-1]
    steps = thread.steps
    # Find the call into helper (line 6, depth 0).
    call_idx = next(
        i
        for i, s in enumerate(steps)
        if isinstance(s, LineStep) and s.line == 6 and s.call == "helper"
    )
    over = step_over(thread, call_idx)
    assert over is not None
    assert steps[over].depth <= steps[call_idx].depth
    # Step into would be call_idx + 1 (the callee's entry line).
    entry = steps[call_idx + 1]
    assert isinstance(entry, LineStep) and entry.func == "helper"
    out = step_out(thread, call_idx + 1)
    assert out is not None and steps[out].depth < entry.depth
    back = step_back_over(thread, over)
    assert back is not None and back <= call_idx + 2


def test_tree_view_collapse():
    run = crash_run()
    thread = run.trace().threads[-1]
    full = render_tree(thread)
    collapsed = render_tree(thread, collapse={"helper"})
    assert "[+] helper (collapsed)" in collapsed
    assert len(collapsed.splitlines()) < len(full.splitlines()) + 2


def test_select_view_exception_highlights_fault():
    run = crash_run()
    view = run.view()
    assert "<=== fault here" in view
    assert "DIVIDE_BY_ZERO" in view


def test_il_mode_exception_line_accuracy():
    """§2.4: IL mode reports the exact line without fault addresses —
    several statements on one block still resolve to the right line."""
    src = """int main() {
    int a;
    int b;
    a = 5;
    b = 0;
    a = a + 1;
    a = a / b;
    a = 99;
    return 0;
}
"""
    run = trace_program(src, mode="il")
    thread = run.trace().threads[-1]
    lines = line_numbers(thread)
    assert 6 in lines  # a = a + 1 executed
    assert 7 in lines  # the faulting line itself (its block started)
    assert 8 not in lines  # never reached


def test_il_mode_array_bounds_exception():
    """The Java ArrayIndexOutOfBounds analog."""
    src = """int data[4];
int main() {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        data[i] = i;
    }
    return 0;
}
"""
    run = trace_program(src, mode="il")
    assert run.process.exit_state == "faulted"
    assert run.process.fault.code == 7  # ARRAY_BOUNDS
    thread = run.trace().threads[-1]
    exc = thread.events("exception")[-1]
    assert exc.detail["code"] == 7
