"""Cross-thread ordering and text views (§3.5, §4.3)."""

from repro.reconstruct import (
    AFTER,
    BEFORE,
    CONCURRENT,
    concurrent_with,
    merge,
    ordering,
    render_flat,
    render_multithread,
    select_view,
)
from repro.reconstruct.model import (
    LineStep,
    ProcessTrace,
    ThreadTrace,
    TraceEvent,
)


def make_trace(tid: int, anchored_steps: list[tuple[int | None, int]]) -> ThreadTrace:
    """Build a synthetic trace: (anchor_clock, line) pairs."""
    trace = ThreadTrace(tid=tid, buffer_index=0, process_name="p",
                        machine_name="m")
    for seq, (anchor, line) in enumerate(anchored_steps):
        step = LineStep(module="m", func="f", file="f.c", line=line,
                        block_id=line)
        step.anchor_clock = anchor
        step.seq = seq
        trace.steps.append(step)
    return trace


def test_ordering_disjoint_windows():
    a = make_trace(0, [(10, 1), (20, 2)])
    b = make_trace(1, [(30, 3)])
    assert ordering(a, a.steps[0], b, b.steps[0]) == BEFORE
    assert ordering(b, b.steps[0], a, a.steps[0]) == AFTER


def test_ordering_overlapping_windows_is_concurrent():
    a = make_trace(0, [(10, 1), (40, 2)])
    b = make_trace(1, [(10, 3)])
    assert ordering(a, a.steps[0], b, b.steps[0]) == CONCURRENT


def test_ordering_unanchored_is_concurrent():
    a = make_trace(0, [(None, 1)])
    b = make_trace(1, [(5, 2)])
    assert ordering(a, a.steps[0], b, b.steps[0]) == CONCURRENT


def test_merge_respects_per_thread_order():
    a = make_trace(0, [(10, 1), (30, 2)])
    b = make_trace(1, [(20, 3)])
    merged = merge([a, b])
    lines = [step.line for _, step in merged]
    assert lines.index(1) < lines.index(2)
    assert lines == [1, 3, 2]


def test_merge_sorts_by_anchor():
    a = make_trace(0, [(100, 1)])
    b = make_trace(1, [(50, 2)])
    merged = merge([a, b])
    assert [s.line for _, s in merged] == [2, 1]


def test_concurrent_with_lists_overlaps():
    a = make_trace(0, [(10, 1)])
    b = make_trace(1, [(10, 2), (99, 3)])
    hits = concurrent_with([a, b], a, a.steps[0])
    lines = {step.line for _, step in hits}
    assert 2 in lines


def test_render_multithread_contains_all_threads():
    a = make_trace(0, [(10, 1)])
    b = make_trace(7, [(20, 2)])
    text = render_multithread([a, b])
    assert "T0" in text and "T7" in text


def test_render_flat_marks_truncation():
    trace = make_trace(0, [(1, 5)])
    trace.truncated = True
    assert "truncated" in render_flat(trace)


def test_select_view_multithread_for_plain_snaps():
    a = make_trace(0, [(10, 1)])
    b = make_trace(1, [(20, 2)])
    pt = ProcessTrace(process_name="p", machine_name="m", reason="external",
                      detail={}, clock=0, threads=[a, b])
    assert "merged view" in select_view(pt)


def test_select_view_hang_lists_threads():
    a = make_trace(0, [(10, 4)])
    pt = ProcessTrace(process_name="p", machine_name="m", reason="hang",
                      detail={}, clock=0, threads=[a])
    view = select_view(pt)
    assert "hang" in view and "f.c:4" in view


def test_select_view_empty_process():
    pt = ProcessTrace(process_name="p", machine_name="m", reason="external",
                      detail={}, clock=0, threads=[])
    assert "no recoverable trace" in select_view(pt)


def test_event_rendering_covers_kinds():
    trace = ThreadTrace(tid=0, buffer_index=0, process_name="p",
                        machine_name="m")
    for kind, detail in [
        ("exception", {"code": 2, "file": "a.c", "line": 3, "func": "f"}),
        ("exception_end", {"signum": 15}),
        ("timestamp", {"syscall": 8}),
        ("thread_start", {"tid": 0}),
        ("thread_end", {"tid": 0, "exit_code": 0}),
        ("snapmark", {"reason": 1}),
        ("untraced", {"why": "bad-dag"}),
        ("sync", {"sync_kind": 1, "logical_id": 5, "seq": 1}),
    ]:
        trace.steps.append(TraceEvent(kind=kind, detail=detail))
    text = render_flat(trace)
    assert "DIVIDE_BY_ZERO" in text
    assert "rpc-call-out" in text
    assert "untraced" in text
