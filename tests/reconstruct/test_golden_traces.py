"""Golden-trace regression tests for the shipped examples.

The full reconstruction output of ``examples/quickstart.py`` and
``examples/multithreaded_crash.py`` — trace, crash diagnosis, call-tree
and merged views — is checked in under ``goldens/``.  Every engine must
reproduce it byte-identically: reconstruction reads the trace-buffer
words the interpreter wrote, so any divergence in probe side effects,
cycle accounting, or scheduling shows up here as a diff.

To regenerate after an *intentional* output change::

    PYTHONPATH=src python examples/quickstart.py \
        > tests/reconstruct/goldens/quickstart.txt
    PYTHONPATH=src python examples/multithreaded_crash.py \
        > tests/reconstruct/goldens/multithreaded_crash.txt
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
from pathlib import Path

import pytest

from repro.vm import ENGINES
from repro.vm.machine import ENGINE_ENV_VAR

_REPO = Path(__file__).resolve().parents[2]
_GOLDENS = Path(__file__).resolve().parent / "goldens"

EXAMPLES = ["quickstart", "multithreaded_crash"]


def _run_example(name: str) -> str:
    """Import the example fresh and capture everything main() prints."""
    spec = importlib.util.spec_from_file_location(
        f"golden_{name}", _REPO / "examples" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        module.main()
    return out.getvalue()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", EXAMPLES)
def test_example_matches_golden(name, engine, monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, engine)
    golden = (_GOLDENS / f"{name}.txt").read_text()
    assert _run_example(name) == golden
