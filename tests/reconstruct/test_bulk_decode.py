"""The bulk (vectorized) record decoders are output-identical to the
scalar oracles on every input class: clean streams, every record shape,
damaged words, truncation, non-word garbage, and fuzzed buffers.

The scalar scanners in :mod:`repro.runtime.records` define the format;
the bulk paths exist purely for throughput (``bench_interpreter.py``'s
decode section holds them to >=3x), so any divergence is a bug in the
bulk path by definition.
"""

from __future__ import annotations

import random

import pytest

from repro.reconstruct.recovery import (
    read_forward_salvage,
    read_forward_salvage_bulk,
)
from repro.runtime.records import (
    INVALID,
    SENTINEL,
    DagRecord,
    ExtKind,
    ExtRecord,
    read_backward,
    read_backward_bulk,
    read_forward,
    read_forward_bulk,
)


def assert_all_agree(words: list[int]) -> None:
    """Every bulk scanner matches its scalar oracle on ``words``."""
    end = len(words)
    assert read_forward_bulk(words, 0, end) == read_forward(words, 0, end)
    assert read_forward_salvage_bulk(words, 0, end) == read_forward_salvage(
        words, 0, end
    )
    if end:
        assert read_backward_bulk(words, end - 1, 0) == read_backward(
            words, end - 1, 0
        )


def _stream(*records) -> list[int]:
    words: list[int] = []
    for record in records:
        if isinstance(record, DagRecord):
            words.append(record.encode())
        else:
            words.extend(record.encode())
    return words


DAGS = [DagRecord(dag_id=i, path_bits=(i * 7) & 0x7FF) for i in range(1, 40)]
EXTS = [
    ExtRecord(ExtKind.SYNC, 3, (1, 2, 3, 4, 5)),
    ExtRecord(ExtKind.TIMESTAMP, 9, (10, 20)),
    ExtRecord(ExtKind.THREAD_START, 0, (7, 0, 1)),
    ExtRecord(ExtKind.SNAP_MARK, 0),
]


def test_clean_dag_stream():
    assert_all_agree(_stream(*DAGS))


def test_mixed_stream_with_zero_tail():
    words = _stream(DAGS[0], EXTS[0], DAGS[1], EXTS[3], *DAGS[2:10])
    assert_all_agree(words + [INVALID] * 6)


def test_high_id_dag_records_near_sentinel():
    # High bytes 0xFF: real records the classifier must not mistake for
    # the sentinel.
    words = [
        DagRecord(dag_id=0xFFFFE, path_bits=0x7FF).encode(),
        DagRecord(dag_id=0xFF800, path_bits=0).encode(),
        SENTINEL,
        DagRecord(dag_id=1, path_bits=1).encode(),
    ]
    assert_all_agree(words)


def test_sentinel_stops_forward_scan():
    words = _stream(*DAGS[:4]) + [SENTINEL] + _stream(*DAGS[4:8])
    assert_all_agree(words)


def test_truncated_ext_record():
    header = ExtRecord(ExtKind.SYNC, 1, (9, 9, 9, 9, 9)).encode()[0]
    words = _stream(*DAGS[:3]) + [header, 9, 9]  # payload cut short
    assert_all_agree(words)


def test_garbage_words_resync():
    words = _stream(*DAGS[:3])
    words += [0x12345678, 0x00000007]  # neither DAG nor ext
    words += _stream(*DAGS[3:6], EXTS[1])
    assert_all_agree(words)


def test_trailer_in_header_position():
    trailer = EXTS[0].encode()[-1]
    words = [trailer] + _stream(*DAGS[:3])
    assert_all_agree(words)


def test_ext_header_with_wrong_trailer():
    words = _stream(DAGS[0])
    bad = list(EXTS[0].encode())
    bad[-1] = EXTS[1].encode()[-1]  # kind/length mismatch
    words += bad + _stream(*DAGS[1:4])
    assert_all_agree(words)


def test_non_word_values_fall_back_to_scalar():
    words = _stream(*DAGS[:3]) + [1 << 40] + _stream(*DAGS[3:5])
    assert_all_agree(words)
    words = _stream(*DAGS[:3]) + [-5]
    assert_all_agree(words)


def test_empty_and_single_word_spans():
    assert_all_agree([])
    assert_all_agree([INVALID])
    assert_all_agree([SENTINEL])
    assert_all_agree([DAGS[0].encode()])


@pytest.mark.parametrize("seed", range(30))
def test_fuzzed_buffers_agree(seed):
    """Random mixtures of records, garbage, zeros, and torn ext records."""
    rng = random.Random(seed)
    words: list[int] = []
    for _ in range(rng.randrange(1, 120)):
        roll = rng.random()
        if roll < 0.55:
            words.append(
                DagRecord(
                    dag_id=rng.randrange(0, 1 << 20),
                    path_bits=rng.randrange(0, 1 << 11),
                ).encode()
            )
        elif roll < 0.70:
            record = ExtRecord(
                rng.randrange(0, 32),
                rng.randrange(0, 1 << 16),
                tuple(
                    rng.randrange(0, 1 << 32)
                    for _ in range(rng.randrange(0, 6))
                ),
            )
            words.extend(record.encode())
        elif roll < 0.80:
            words.append(rng.randrange(0, 1 << 32))  # raw garbage
        elif roll < 0.90:
            words.extend([INVALID] * rng.randrange(1, 5))
        else:
            # A torn ext record: header plus a slice of its body.
            encoded = ExtRecord(
                rng.randrange(0, 32),
                rng.randrange(0, 1 << 16),
                tuple(rng.randrange(0, 1 << 32) for _ in range(3)),
            ).encode()
            words.extend(encoded[: rng.randrange(1, len(encoded))])
    assert_all_agree(words)
    # Sub-spans exercise boundary clamping.
    lo = rng.randrange(0, len(words))
    hi = rng.randrange(lo, len(words) + 1)
    assert read_forward_bulk(words, lo, hi) == read_forward(words, lo, hi)
    assert read_forward_salvage_bulk(words, lo, hi) == read_forward_salvage(
        words, lo, hi
    )
    if hi > lo:
        assert read_backward_bulk(words, hi - 1, lo) == read_backward(
            words, hi - 1, lo
        )
