"""Stitching unit tests on synthetic SYNC chains (§5.1-5.2)."""

from repro.reconstruct import (
    collect_sync_points,
    estimate_skews,
    stitch_logical_threads,
)
from repro.reconstruct.model import LineStep, ThreadTrace, TraceEvent
from repro.runtime.records import SyncKind


def sync_event(kind, runtime_id, logical_id, seq, clock):
    return TraceEvent(
        kind="sync",
        detail={
            "sync_kind": kind,
            "runtime_id": runtime_id,
            "logical_id": logical_id,
            "seq": seq,
        },
        clock=clock,
    )


def line(n):
    return LineStep(module="m", func="f", file="f.c", line=n, block_id=n)


def make_trace(tid, process, steps):
    trace = ThreadTrace(tid=tid, buffer_index=0, process_name=process,
                        machine_name=process)
    for seq, step in enumerate(steps):
        step.seq = seq
        trace.steps.append(step)
    return trace


def rpc_pair(skew=0, logical=0x42):
    caller = make_trace(0, "client", [
        line(1),
        sync_event(SyncKind.CALL_OUT, 100, logical, 1, 1000),
        sync_event(SyncKind.RETURN, 100, logical, 4, 2000),
        line(2),
    ])
    callee = make_trace(0, "server", [
        sync_event(SyncKind.ENTER, 200, logical, 2, 1400 + skew),
        line(10),
        line(11),
        sync_event(SyncKind.EXIT, 200, logical, 3, 1600 + skew),
    ])
    return caller, callee


def test_collect_orders_by_logical_then_seq():
    caller, callee = rpc_pair()
    points = collect_sync_points([callee, caller])  # reversed input order
    assert [p.seq for p in points] == [1, 2, 3, 4]
    assert [p.sync_kind for p in points] == [
        SyncKind.CALL_OUT, SyncKind.ENTER, SyncKind.EXIT, SyncKind.RETURN
    ]


def test_stitch_produces_caller_callee_caller():
    caller, callee = rpc_pair()
    (logical,) = stitch_logical_threads([caller, callee])
    legs = [seg.leg for seg in logical.segments]
    assert legs[0] == "caller"
    assert "callee" in legs
    assert legs[-1] == "caller"
    flat = [
        step.line
        for _, step in logical.steps()
        if isinstance(step, LineStep)
    ]
    assert flat == [1, 10, 11, 2]  # callee lines between caller lines


def test_stitch_separate_logical_ids_stay_separate():
    a_caller, a_callee = rpc_pair(logical=0x11)
    b_caller, b_callee = rpc_pair(logical=0x22)
    logicals = stitch_logical_threads([a_caller, a_callee, b_caller, b_callee])
    assert len(logicals) == 2
    assert {lt.logical_id for lt in logicals} == {0x11, 0x22}


def test_skew_estimate_symmetric_latency():
    # Caller clock: out=1000 ret=2000; callee: enter=1400+skew exit=1600+skew.
    # True offset = skew + 200 (network asymmetry folds into the bound).
    caller, callee = rpc_pair(skew=5000)
    skews = estimate_skews([caller, callee])
    ((pair, offset),) = skews.items()
    assert pair == (100, 200)
    assert abs(offset - 5000) <= 300


def test_skew_requires_full_quadruple():
    caller, callee = rpc_pair()
    # Drop the EXIT sync: no estimate possible.
    callee.steps = [s for s in callee.steps
                    if not (isinstance(s, TraceEvent) and s.kind == "sync"
                            and s.detail["sync_kind"] == SyncKind.EXIT)]
    assert estimate_skews([caller, callee]) == {}


def test_stitch_missing_exit_flushes_callee_tail():
    """A callee that crashed before its EXIT still contributes its steps
    (the Figure 6 server-fault case)."""
    logical_id = 0x7
    caller = make_trace(0, "client", [
        line(1),
        sync_event(SyncKind.CALL_OUT, 100, logical_id, 1, 1000),
        sync_event(SyncKind.RETURN, 100, logical_id, 4, 2000),
        line(2),
    ])
    callee = make_trace(0, "server", [
        sync_event(SyncKind.ENTER, 200, logical_id, 2, 1400),
        line(10),
        TraceEvent(kind="exception", detail={"code": 1}),
    ])
    for seq, step in enumerate(callee.steps):
        step.seq = seq
    (logical,) = stitch_logical_threads([caller, callee])
    flat = [
        (owner.process_name, getattr(step, "line", None))
        for owner, step in logical.steps()
    ]
    server_lines = [l for p, l in flat if p == "server" and l is not None]
    assert server_lines == [10]
    # And the server's exception event rides along in its segment.
    kinds = [
        step.kind
        for owner, step in logical.steps()
        if isinstance(step, TraceEvent) and owner.process_name == "server"
    ]
    assert "exception" in kinds
