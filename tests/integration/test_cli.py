"""The tbtrace command line."""

import pytest

from repro.tools.tb import main

CRASHY = """
int div_by(int d) {
    return 100 / d;
}
int main() {
    print_int(div_by(4));
    print_int(div_by(0));
    return 0;
}
"""

CLEAN = "int main() { print_int(1); return 0; }"


@pytest.fixture()
def crashy(tmp_path):
    path = tmp_path / "crashy.c"
    path.write_text(CRASHY)
    return str(path)


def test_run_crashing_program(crashy, capsys):
    rc = main(["run", crashy])
    out = capsys.readouterr().out
    assert rc == 1  # non-zero on faulted process
    assert "DIVIDE_BY_ZERO" in out
    assert "fault here" in out
    # The highlight marks only the fatal execution of the line.
    assert out.count("<=== fault here") == 1


def test_run_clean_program(tmp_path, capsys):
    path = tmp_path / "ok.c"
    path.write_text(CLEAN)
    rc = main(["run", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no snap was taken" in out


def test_run_view_round_trip(crashy, tmp_path, capsys):
    snap = tmp_path / "crash.json"
    mapfile = tmp_path / "app.map.json"
    main(["run", crashy, "--save-snap", str(snap),
          "--save-mapfile", str(mapfile)])
    capsys.readouterr()
    rc = main(["view", str(snap), str(mapfile)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "DIVIDE_BY_ZERO" in out


def test_view_flat(crashy, tmp_path, capsys):
    snap = tmp_path / "crash.json"
    mapfile = tmp_path / "app.map.json"
    main(["run", crashy, "--save-snap", str(snap),
          "--save-mapfile", str(mapfile)])
    capsys.readouterr()
    main(["view", str(snap), str(mapfile), "--flat"])
    out = capsys.readouterr().out
    assert "crashy.c:2" in out


def test_tile_output(crashy, capsys):
    rc = main(["tile", crashy])
    out = capsys.readouterr().out
    assert rc == 0
    assert "function div_by" in out and "DAG 0" in out


def test_disasm_instrumented(crashy, capsys):
    rc = main(["disasm", crashy, "--instrument"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "stdag" in out
    assert "instrumented:" in out


def test_disasm_asm_output(crashy, capsys):
    rc = main(["disasm", crashy, "--asm"])
    out = capsys.readouterr().out
    assert rc == 0
    assert ".func div_by" in out


def test_run_with_policy_file(crashy, tmp_path, capsys):
    policy = tmp_path / "policy.txt"
    policy.write_text("snap on exception\nsuppress duplicates on\n")
    rc = main(["run", crashy, "--policy", str(policy)])
    out = capsys.readouterr().out
    assert "snap: exception" in out


def test_run_il_mode_tree_view(crashy, capsys):
    rc = main(["run", crashy, "--mode", "il", "--tree"])
    out = capsys.readouterr().out
    assert "call tree" in out


def test_dagbase_command(tmp_path, capsys):
    a = tmp_path / "liba.c"
    a.write_text("int a_fn(int x) { if (x > 0) { return x; } return -x; }")
    b = tmp_path / "libb.c"
    b.write_text("int b_fn(int x) { return x * 2; }")
    out_path = tmp_path / "dag.base"
    rc = main(["dagbase", str(a), str(b), "--out", str(out_path)])
    assert rc == 0
    from repro.instrument import DagBaseFile

    dagbase = DagBaseFile.load(str(out_path))
    assert dagbase.base_for("liba") is not None
    assert dagbase.base_for("libb") is not None
    assert dagbase.base_for("liba") != dagbase.base_for("libb")
