"""Abrupt termination and long-running-server scenarios, end to end.

These are TraceBack's headline capabilities: "the trace shows the
dynamic instruction sequence leading up to the fault state, even when
the program took exceptions or terminated abruptly (e.g., kill -9)."
"""

from repro import TraceSession
from repro.reconstruct import Reconstructor
from repro.runtime import RuntimeConfig
from repro.vm import Signal

SPIN_FOREVER = """
int phase[1];
int step_a() { phase[0] = 1; return 1; }
int step_b() { phase[0] = 2; return 2; }
int main() {
    int i;
    for (i = 0; i < 100000000; i = i + 1) {
        step_a();
        step_b();
    }
    return 0;
}
"""


def killed_session(sub_words=64, subs=2, cycles=400_000):
    session = TraceSession(
        runtime_config=RuntimeConfig(
            sub_buffer_words=sub_words, sub_buffers=subs, main_buffers=1
        )
    )
    session.add_minic(SPIN_FOREVER, name="server", file_name="server.c")
    session.process.start("server")
    session.machine.run(max_cycles=cycles)
    session.process.post_signal(Signal.KILL)
    return session


def test_kill_nine_after_many_wraps_reconstructs_recent_history():
    """The buffers wrapped many times before the kill; the ring holds
    the most recent window and reconstruction recovers it."""
    session = killed_session()
    assert session.runtime.stats.full_wraps > 2
    snap = session.runtime.build_snap("post-mortem", {"signal": 9})
    trace = Reconstructor(session.mapfiles).reconstruct(snap)
    thread = trace.threads[-1]
    assert thread.truncated  # the THREAD_START is long overwritten
    assert thread.tid == 0  # attributed via the buffer's owner
    lines = [s.line for s in thread.line_steps()]
    assert len(lines) > 20
    # The alternating step_a/step_b pattern is intact in the window.
    assert 3 in lines and 4 in lines  # bodies of step_a / step_b


def test_kill_mid_subbuffer_finds_last_nonzero_entry():
    """§3.2: progress inside the current sub-buffer is found by scanning
    to the last non-zero record-aligned entry."""
    session = killed_session(cycles=123_456)  # arbitrary cut point
    snap = session.runtime.build_snap("post-mortem", {})
    trace = Reconstructor(session.mapfiles).reconstruct(snap)
    thread = trace.threads[-1]
    assert thread.line_steps(), "history recovered despite mid-write kill"


def test_unloaded_module_trace_still_decodes():
    """Records from a module that was since unloaded still expand via
    its mapfile + the runtime's retained DAG range."""
    session = TraceSession()
    lib = session.add_minic(
        "int ping(int x) { return x + 1; }", name="plugin"
    )
    session.add_minic(
        """
extern int ping(int x);
int main() {
    print_int(ping(41));
    sleep(100);
    return 0;
}
""",
        name="app",
    )
    session.process.start("app")
    session.machine.run(max_cycles=200_000)
    loaded = session.process.loader.module_named("plugin")
    if loaded is not None and not session.process.alive:
        pass  # process already finished; plugin still loaded
    # Unload the plugin (long-running-server scenario) then snap.
    if loaded is not None:
        session.process.unload_module(loaded)
    snap = session.runtime.build_snap("post-unload", {})
    trace = Reconstructor(session.mapfiles).reconstruct(snap)
    thread = trace.threads[-1]
    modules = {s.module for s in thread.line_steps()}
    assert "plugin" in modules  # its history decoded without the module


def test_logical_clock_mode_orders_events():
    """§3.5: platforms without a real-time clock fall back to a logical
    clock that still orders events within the process."""
    session = TraceSession(
        runtime_config=RuntimeConfig(clock="logical")
    )
    session.add_minic(
        """
int main() {
    sleep(100);
    sleep(100);
    sleep(100);
    print_int(1);
    return 0;
}
""",
        name="app",
    )
    run = session.run()
    assert run.output == ["1"]
    snap = run.runtime.build_snap("end", {})
    trace = Reconstructor(run.mapfiles).reconstruct(snap)
    thread = trace.threads[-1]
    stamps = [e.clock for e in thread.events("timestamp")]
    assert len(stamps) >= 3
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)  # strictly increasing ticks
