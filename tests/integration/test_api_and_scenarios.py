"""High-level API and the paper's worked scenarios, end to end."""

from repro import TraceSession, trace_program
from repro.instrument import InstrumentConfig
from repro.reconstruct import LineStep
from repro.vm import ExcCode
from repro.workloads.scenarios import (
    fidelity_session,
    figure5_session,
    figure6_session,
    oracle_session,
)


def test_trace_program_clean_run_has_no_policy_snap():
    run = trace_program("int main() { print_int(7); return 0; }")
    assert run.output == ["7"]
    assert run.status == "done"
    # Only policy-triggered snaps exist; a clean run takes none.
    assert run.runtime.stats.snaps == 0


def test_trace_program_crash_produces_view():
    run = trace_program("int main() { int x; x = 1 / 0; return 0; }")
    assert run.process.exit_state == "faulted"
    assert "DIVIDE_BY_ZERO" in run.view()


def test_trace_program_il_mode():
    run = trace_program(
        "int a[2];\nint main() { a[9] = 1; return 0; }", mode="il"
    )
    assert run.process.fault.code == ExcCode.ARRAY_BOUNDS


def test_session_multiple_modules():
    session = TraceSession()
    session.add_minic("int twice(int x) { return x * 2; }", name="libtwice")
    session.add_minic(
        """
extern int twice(int x);
int main() { print_int(twice(21)); return 0; }
""",
        name="app",
    )
    run = session.run()
    assert run.output == ["42"]
    assert len(run.mapfiles) == 2
    # Both modules were rebased into disjoint ranges.
    assert run.runtime.allocator.rebase_count == 1


def test_session_uninstrumented_module_coexists():
    """§1: "robustly allowing parts of a program to be not traced"."""
    session = TraceSession()
    session.add_minic("int secret(int x) { return x ^ 255; }",
                      name="blackbox", instrument=False)
    session.add_minic(
        """
extern int secret(int x);
int main() {
    print_int(secret(0));
    int y;
    y = 1 / 0;
    return 0;
}
""",
        name="app",
    )
    run = session.run()
    assert run.output == ["255"]
    trace = run.trace()
    thread = trace.threads[-1]
    # The instrumented module's lines are present; the black box is not.
    modules = {s.module for s in thread.line_steps()}
    assert modules == {"app"}
    assert thread.events("exception")


def test_figure5_scenario_invariants():
    run = figure5_session().run(max_cycles=5_000_000)
    assert run.process.exit_state == "faulted"
    thread = run.trace().threads[-1]
    files = {s.file for s in thread.line_steps()}
    assert files == {"NativeString.java", "NativeString.c"}


def test_figure6_scenario_invariants():
    session = figure6_session()
    result = session.run()
    client = session.nodes["labrador-client"].process
    assert client.output == ["0", "Rex"]
    trace = result.reconstruct()
    assert len(trace.logical_threads) >= 1


def test_fidelity_and_oracle_round():
    fid = fidelity_session().run()
    assert fid.process.exit_state == "faulted"
    ora = oracle_session().run()
    assert ora.output == ["14"]
    assert ora.runtime.stats.snaps == 1


def test_snap_and_mapfile_survive_disk_round_trip(tmp_path):
    """The full offline workflow: snap + mapfiles to disk, reconstruct
    in a 'different process' from files alone."""
    from repro.instrument import Mapfile
    from repro.reconstruct import Reconstructor
    from repro.runtime import SnapFile

    run = trace_program(
        """
int main() {
    int i;
    for (i = 0; i < 3; i = i + 1) { print_int(i); }
    int z;
    z = i / (i - 3);
    return 0;
}
"""
    )
    snap_path = tmp_path / "crash.snap.json"
    run.snap.save(str(snap_path))
    map_path = tmp_path / "app.mapfile.json"
    run.mapfiles[0].save(str(map_path))

    snap = SnapFile.load(str(snap_path))
    mapfile = Mapfile.load(str(map_path))
    trace = Reconstructor([mapfile]).reconstruct(snap)
    thread = trace.threads[-1]
    assert isinstance(thread.line_steps()[-1], LineStep)
    assert thread.events("exception")[-1].detail["code"] == ExcCode.DIVIDE_BY_ZERO


def test_il_and_native_modes_trace_identically_for_output():
    src = """
int f(int n) {
    int acc;
    int i;
    acc = 0;
    for (i = 0; i < n; i = i + 1) { acc = acc + i * i; }
    return acc;
}
int main() { print_int(f(10)); return 0; }
"""
    native = trace_program(src, mode="native")
    il = trace_program(src, mode="il")
    assert native.output == il.output == ["285"]


def test_default_config_snapshots_unhandled_only():
    session = TraceSession()
    session.add_minic(
        """
int main() {
    int e;
    try { throw 5; } catch (e) { }
    throw 9;
    return 0;
}
""",
        name="app",
    )
    run = session.run()
    # The handled throw does not snap; the unhandled one does.
    assert run.runtime.stats.snaps == 1
    assert run.snap.reason == "unhandled"
    assert run.snap.detail["code"] == 9
