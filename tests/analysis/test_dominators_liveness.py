"""Dominators, loop detection, and register liveness."""

from repro.analysis import (
    Liveness,
    back_edges,
    build_cfg,
    compute_dominators,
    instr_defs,
    instr_uses,
    loop_headers,
    natural_loop,
    retreating_edges,
)
from repro.isa import Instr, Op, PROBE_REG, assemble

LOOP_SRC = """
.func main
  movi r0, 10
top:
  addi r0, r0, -1
  bnz r0, top
  halt
.endfunc
"""

DIAMOND_SRC = """
.func main
  bz r0, right
  movi r1, 1
  br join
right:
  movi r1, 2
join:
  halt
.endfunc
"""


def cfg_for(src: str):
    module = assemble(src)
    return build_cfg(module, module.funcs[0])


def test_entry_dominates_everything():
    cfg = cfg_for(DIAMOND_SRC)
    dom = compute_dominators(cfg)
    for block in cfg.blocks:
        assert 0 in dom[block]


def test_join_not_dominated_by_either_branch():
    cfg = cfg_for(DIAMOND_SRC)
    dom = compute_dominators(cfg)
    join = 4
    assert 1 not in dom[join]
    assert 3 not in dom[join]


def test_back_edge_found_in_loop():
    cfg = cfg_for(LOOP_SRC)
    assert back_edges(cfg) == {(1, 1)}
    assert loop_headers(cfg) == {1}


def test_retreating_superset_of_back_edges():
    cfg = cfg_for(LOOP_SRC)
    assert back_edges(cfg) <= retreating_edges(cfg)


def test_natural_loop_members():
    cfg = cfg_for(LOOP_SRC)
    assert natural_loop(cfg, (1, 1)) == {1}


def test_nested_loop_headers():
    cfg = cfg_for(
        """
        .func main
          movi r0, 3
outer:
          movi r1, 3
inner:
          addi r1, r1, -1
          bnz r1, inner
          addi r0, r0, -1
          bnz r0, outer
          halt
        .endfunc
        """
    )
    assert loop_headers(cfg) == {1, 2}


def test_acyclic_graph_has_no_headers():
    cfg = cfg_for(DIAMOND_SRC)
    assert loop_headers(cfg) == set()


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def test_instr_uses_and_defs_alu():
    instr = Instr(Op.ADD, rd=1, rs=2, rt=3)
    assert instr_uses(instr) == {2, 3}
    assert instr_defs(instr) == {1}


def test_store_uses_both_registers():
    instr = Instr(Op.STW, rd=4, rs=5, imm=0)
    assert instr_uses(instr) == {4, 5}
    assert instr_defs(instr) == frozenset()


def test_call_clobbers_caller_saved():
    assert PROBE_REG in instr_defs(Instr(Op.CALL, imm=0))


def test_live_across_loop():
    cfg = cfg_for(LOOP_SRC)
    live = Liveness(cfg)
    # r0 is the loop counter: live into the loop block.
    assert 0 in live.live_in[1]
    # Nothing is live into the exit block.
    assert live.live_in[3] == frozenset()


def test_probe_register_free_when_unused():
    cfg = cfg_for(LOOP_SRC)
    live = Liveness(cfg)
    for block in cfg.blocks:
        assert live.reg_free_at_block_start(block, PROBE_REG)


def test_probe_register_live_when_program_uses_it():
    cfg = cfg_for(
        """
        .func main
          movi r11, 7
        top:
          addi r11, r11, -1
          bnz r11, top
          halt
        .endfunc
        """
    )
    live = Liveness(cfg)
    assert not live.reg_free_at_block_start(1, PROBE_REG)


def test_live_at_instruction_granularity():
    cfg = cfg_for(
        """
        .func main
          movi r1, 1
          movi r2, 2
          add r3, r1, r2
          halt
        .endfunc
        """
    )
    live = Liveness(cfg)
    # Before the add, r1 and r2 are live; after (before halt), nothing.
    assert {1, 2} <= live.live_at(0, 2)
    assert live.live_at(0, 3) == frozenset()
