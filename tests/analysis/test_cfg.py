"""CFG recovery: leaders, edges, call/syscall/multiway classification."""

from repro.analysis import build_all_cfgs, build_cfg, indirect_targets
from repro.isa import assemble


def cfg_for(src: str, func: str = "main"):
    module = assemble(src)
    return build_cfg(module, module.func_named(func))


def test_straight_line_is_one_block():
    cfg = cfg_for(".func main\n movi r0, 1\n movi r1, 2\n halt\n.endfunc")
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].succs == []


def test_conditional_creates_diamond():
    cfg = cfg_for(
        """
        .func main
          bz r0, else
          movi r1, 1
          br end
        else:
          movi r1, 2
        end:
          halt
        .endfunc
        """
    )
    entry = cfg.blocks[0]
    assert sorted(entry.succs) == [1, 3]
    assert cfg.blocks[1].succs == [4]
    assert cfg.blocks[3].succs == [4]


def test_call_ends_block_and_marks_it():
    cfg = cfg_for(
        """
        .func main
          movi r0, 1
          call f
          halt
        .endfunc
        .func f
          ret
        .endfunc
        """
    )
    assert cfg.blocks[0].ends_with_call
    assert cfg.blocks[0].succs == [2]  # the return point


def test_syscall_ends_block():
    cfg = cfg_for(".func main\n sys 1\n movi r0, 1\n halt\n.endfunc")
    assert cfg.blocks[0].ends_with_syscall
    assert cfg.blocks[0].succs == [1]


def test_jump_table_targets_become_entries():
    module = assemble(
        """
        .func main
          la r1, tab
          jtab r0, r1
        a: halt
        b: halt
        .endfunc
        .rodata
        tab: .addr a b
        """
    )
    assert indirect_targets(module) == {3, 4}  # la expands to 2 words
    cfg = build_cfg(module, module.func_named("main"))
    multiway = cfg.blocks[0]
    assert multiway.ends_with_multiway
    assert sorted(multiway.succs) == [3, 4]
    assert set(cfg.entries) >= {0, 3, 4}


def test_handler_entry_is_cfg_entry():
    cfg = cfg_for(
        """
        .func main
        t0:
          movi r0, 1
        t1:
          halt
        h:
          halt
        .handler t0 t1 h
        .endfunc
        """
    )
    assert 2 in cfg.entries


def test_line_splitting_makes_line_leaders():
    module = assemble(
        """
        .func main
        .line a.c 1
          movi r0, 1
          movi r1, 2
        .line a.c 2
          movi r2, 3
          halt
        .endfunc
        """
    )
    plain = build_cfg(module, module.func_named("main"))
    split = build_cfg(module, module.func_named("main"), split_at_lines=True)
    assert len(plain.blocks) == 1
    assert len(split.blocks) == 2
    assert 2 in split.blocks


def test_reverse_postorder_visits_preds_first():
    cfg = cfg_for(
        """
        .func main
          bz r0, right
          movi r1, 1
          br join
        right:
          movi r1, 2
        join:
          halt
        .endfunc
        """
    )
    order = cfg.reverse_postorder()
    join = 4
    assert order.index(join) > order.index(1)
    assert order.index(join) > order.index(3)


def test_build_all_cfgs_keys_by_name():
    module = assemble(
        ".func a\n halt\n.endfunc\n.func b\n halt\n.endfunc"
    )
    cfgs = build_all_cfgs(module)
    assert set(cfgs) == {"a", "b"}


def test_preds_filled():
    cfg = cfg_for(
        """
        .func main
        top:
          addi r0, r0, -1
          bnz r0, top
          halt
        .endfunc
        """
    )
    assert 0 in cfg.blocks[0].preds  # the loop back edge
    assert 0 in cfg.blocks[2].preds
