"""The collector uplink: batching, back-pressure, seeded retry."""

import pytest

from repro.fleet import Collector, SnapVault
from tests.fleet.test_store import make_snap


@pytest.fixture
def vault(tmp_path):
    return SnapVault(str(tmp_path / "vault"))


def collector_for(vault, **kw):
    kw.setdefault("batch_size", 4)
    kw.setdefault("queue_limit", 8)
    return Collector(vault, **kw)


# ----------------------------------------------------------------------
# Batching
# ----------------------------------------------------------------------
def test_submit_queues_until_flush(vault):
    collector = collector_for(vault)
    for i in range(3):
        collector.submit(make_snap(payload=i))
    assert collector.pending() == 3
    assert len(vault) == 0  # nothing durable yet
    assert collector.flush_batch() == 3
    assert collector.pending() == 0
    assert len(vault) == 3


def test_flush_respects_batch_size(vault):
    collector = collector_for(vault, batch_size=2, queue_limit=16)
    for i in range(5):
        collector.submit(make_snap(payload=i))
    assert collector.flush_batch() == 2
    assert collector.pending() == 3
    assert collector.drain() == 3
    assert vault.metrics.batches == 3  # 2 + 2 + 1


def test_drain_uploads_everything(vault):
    collector = collector_for(vault, queue_limit=32)
    for i in range(10):
        collector.submit(make_snap(payload=i))
    assert collector.drain() == 10
    assert len(vault) == 10
    assert vault.metrics.uploads == 10


def test_duplicate_submissions_dedupe_at_the_vault(vault):
    collector = collector_for(vault)
    for _ in range(4):
        collector.submit(make_snap(payload=42))
    collector.drain()
    assert len(vault) == 1
    assert vault.metrics.dedupe_hits == 3
    assert sum(1 for r in collector.results if r.deduped) == 3


# ----------------------------------------------------------------------
# Bounded queue / back-pressure
# ----------------------------------------------------------------------
def test_full_queue_forces_inline_flush_not_loss(vault):
    collector = collector_for(vault, batch_size=2, queue_limit=4)
    for i in range(12):
        collector.submit(make_snap(payload=i))
    collector.drain()
    # Back-pressure flushed inline; every distinct snap survived.
    assert len(vault) == 12
    assert vault.metrics.backpressure_flushes > 0
    assert vault.metrics.evicted == 0
    assert vault.metrics.queue_peak <= 4


def test_eviction_only_when_flush_cannot_free(vault):
    # Every upload drops, so the inline flush can't free the queue:
    # the oldest entry is evicted rather than growing without bound.
    collector = collector_for(
        vault, batch_size=2, queue_limit=2, max_retries=50
    )
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    for i in range(6):
        collector.submit(make_snap(payload=i))
    assert collector.pending() <= 2
    assert vault.metrics.evicted > 0


# ----------------------------------------------------------------------
# Retry with seeded backoff, dead-lettering
# ----------------------------------------------------------------------
def test_dropped_upload_retried_until_delivered(vault):
    attempts = []

    def chaos(machine, snap, attempt):
        attempts.append(attempt)
        return "drop" if attempt < 3 else None

    collector = collector_for(vault, seed=5)
    collector.upload_chaos = chaos
    collector.submit(make_snap())
    collector.drain()
    assert len(vault) == 1
    assert attempts == [1, 2, 3]
    assert vault.metrics.drops == 2
    assert vault.metrics.retries == 2
    assert vault.metrics.dead_letters == 0


def test_backoff_grows_and_is_seeded(vault):
    def chaos(machine, snap, attempt):
        return attempt < 4  # three drops, then deliver

    runs = []
    for _ in range(2):
        v = SnapVault(str(vault.root) + f"-{len(runs)}")
        collector = collector_for(v, seed=99)
        collector.upload_chaos = chaos
        collector.submit(make_snap())
        collector.drain()
        item = [r for r in collector.results][0]
        runs.append(v.metrics.backoff_cycles)
    assert runs[0] == runs[1]  # same seed -> identical jitter
    assert runs[0] > 0


def test_backoff_schedule_is_exponential(vault):
    collector = collector_for(vault, seed=0, backoff_base=1000)
    collector.upload_chaos = lambda m, s, attempt: attempt < 4
    collector.submit(make_snap())
    collector.drain()
    # The pending item recorded its backoffs before final delivery.
    assert vault.metrics.retries == 3
    # base*1 + base*2 + base*4 plus jitter in [0, base) per retry.
    assert 7000 <= vault.metrics.backoff_cycles < 7000 + 3 * 1000


def test_backoff_is_clamped_at_backoff_max(vault):
    # Seven consecutive drops: uncapped the last delay would be
    # base * 2**6 = 64_000; the cap holds every delay at backoff_max,
    # and the recorded schedule shows the *clamped* values.
    collector = collector_for(
        vault,
        seed=3,
        backoff_base=1000,
        backoff_max=4000,
        max_retries=10,
    )
    collector.upload_chaos = lambda m, s, attempt: "drop"
    collector.submit(make_snap())
    item = collector.queue[0]
    for _ in range(7):
        collector.flush_batch()
    assert item.attempts == 7
    assert len(item.backoffs) == 7
    assert all(delay <= 4000 for delay in item.backoffs)
    # Growth saturates: attempt 3 would be 4000 + jitter uncapped, so
    # every delay from there on records exactly the cap.
    assert 1000 <= item.backoffs[0] < 2000
    assert 2000 <= item.backoffs[1] < 3000
    assert item.backoffs[2:] == [4000] * 5
    # A healed uplink still delivers, and the metrics carry the
    # clamped (not theoretical) total.
    collector.upload_chaos = None
    collector.drain()
    assert len(vault) == 1
    assert vault.metrics.backoff_cycles == sum(item.backoffs)


def test_backoff_with_jitter_clamps_exactly_at_maximum():
    import random

    from repro.fleet.collector import backoff_with_jitter

    assert backoff_with_jitter(1000, 10, random.Random(0), 4000) == 4000
    # Unclamped, the delay is at least the exponential floor.
    assert backoff_with_jitter(1000, 1, random.Random(0), None) >= 1000


def test_backoff_max_below_base_rejected(vault):
    with pytest.raises(ValueError, match="backoff_max"):
        collector_for(vault, backoff_base=1000, backoff_max=500)


def test_default_backoff_max_is_32x_base(vault):
    collector = collector_for(vault, backoff_base=250)
    assert collector.backoff_max == 32 * 250


def test_dead_letter_after_max_retries_keeps_evidence(vault):
    collector = collector_for(vault, max_retries=2)
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    collector.submit(make_snap())
    collector.drain()
    assert len(vault) == 0
    assert len(collector.dead) == 1
    assert vault.metrics.dead_letters == 1
    # The evidence is still there: a healed uplink can requeue it.
    collector.upload_chaos = None
    assert collector.requeue_dead() == 1
    collector.drain()
    assert len(vault) == 1


def test_network_charges_upload_latency(tmp_path):
    from repro.distributed.network import Network

    network = Network(rpc_latency=500)
    machine = network.add_machine("m1")
    vault = SnapVault(str(tmp_path / "v"))
    collector = Collector(vault, network=network)
    before = machine.cycles
    collector.submit(make_snap(machine="m1"))
    collector.drain()
    assert machine.cycles == before + 500


def test_network_upload_chaos_hook_applies(tmp_path):
    from repro.distributed.network import Network

    network = Network()
    network.add_machine("m1")
    verdicts = iter(["drop", None])
    network.upload_chaos = lambda machine, snap, attempt: next(verdicts)
    vault = SnapVault(str(tmp_path / "v"))
    collector = Collector(vault, network=network)
    collector.submit(make_snap(machine="m1"))
    collector.drain()
    assert len(vault) == 1
    assert vault.metrics.drops == 1


def test_bad_collector_options_rejected(vault):
    with pytest.raises(ValueError):
        collector_for(vault, batch_size=0)
    with pytest.raises(ValueError):
        collector_for(vault, queue_limit=0)


# ----------------------------------------------------------------------
# requeue_dead respects the queue bound (ISSUE 5 satellite)
# ----------------------------------------------------------------------
def test_requeue_dead_respects_queue_capacity(vault):
    collector = collector_for(vault, queue_limit=4, max_retries=1)
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    for i in range(6):
        collector.submit(make_snap(payload=i))
        collector.drain()  # each one dies alone
    assert len(collector.dead) == 6
    assert vault.metrics.dead_letters == 6
    # Pre-fill half the queue with live submissions.
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    collector.submit(make_snap(payload="live-a"))
    collector.submit(make_snap(payload="live-b"))
    assert collector.pending() == 2
    admitted = collector.requeue_dead()
    # Only the queue's remaining room was used; the rest stay dead.
    assert admitted == 2
    assert collector.pending() == 4
    assert len(collector.dead) == 4
    assert vault.metrics.dead_requeued == 2
    # No live entry was evicted to make room.
    queued = [item.snap.detail["code"] for item in collector.queue]
    assert "live-a" in queued and "live-b" in queued
    assert vault.metrics.evicted == 0


def test_requeue_dead_counts_each_transition_once(vault):
    collector = collector_for(vault, queue_limit=8, max_retries=1)
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    collector.submit(make_snap(payload="x"))
    collector.drain()
    assert vault.metrics.dead_letters == 1
    # Die, requeue, die again, requeue again: two full round trips.
    assert collector.requeue_dead() == 1
    collector.drain()
    assert vault.metrics.dead_letters == 2
    assert collector.requeue_dead() == 1
    collector.upload_chaos = None
    collector.drain()
    assert len(vault) == 1
    assert vault.metrics.dead_letters == 2
    assert vault.metrics.dead_requeued == 2
    assert not collector.dead
    # Net dead letters is the difference of the two counters.
    assert vault.metrics.dead_letters - vault.metrics.dead_requeued == 0


def test_requeue_dead_with_no_room_admits_nothing(vault):
    collector = collector_for(vault, queue_limit=2, max_retries=1)
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    collector.submit(make_snap(payload="dies"))
    collector.drain()
    collector.submit(make_snap(payload="live-1"))
    collector.submit(make_snap(payload="live-2"))
    assert collector.pending() == 2  # full
    assert collector.requeue_dead() == 0
    assert len(collector.dead) == 1
    assert vault.metrics.dead_requeued == 0


# ----------------------------------------------------------------------
# close(): flush-or-deadletter, deterministically (ISSUE 5 satellite)
# ----------------------------------------------------------------------
def test_close_flushes_pending_uploads(vault):
    collector = collector_for(vault)
    for i in range(3):
        collector.submit(make_snap(payload=i))
    collector.close()
    assert collector.closed
    assert len(vault) == 3
    assert collector.pending() == 0 and not collector.dead
    # The incident checkpoint was flushed too.
    import os

    assert os.path.exists(
        os.path.join(vault.root, vault.incident_index_path())
    )


def test_close_dead_letters_what_cannot_flush(vault):
    collector = collector_for(vault, max_retries=1)
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    for i in range(3):
        collector.submit(make_snap(payload=i))
    collector.close()
    # Nothing landed, nothing silently dropped: all dead-lettered.
    assert len(vault) == 0
    assert collector.pending() == 0
    assert len(collector.dead) == 3
    assert vault.metrics.dead_letters == 3


def test_close_without_flush_dead_letters_everything(vault):
    collector = collector_for(vault)
    for i in range(3):
        collector.submit(make_snap(payload=i))
    collector.close(flush=False)
    assert len(vault) == 0
    assert len(collector.dead) == 3
    assert vault.metrics.close_dead_letters == 3


def test_close_is_idempotent_and_rejects_new_work(vault):
    collector = collector_for(vault)
    collector.submit(make_snap(payload="in-time"))
    collector.close()
    collector.close()  # second close is a no-op
    assert len(vault) == 1
    before = vault.metrics.close_dead_letters
    collector.submit(make_snap(payload="too-late"))
    # Submit-after-close is never silently dropped.
    assert len(collector.dead) == 1
    assert vault.metrics.close_dead_letters == before + 1
    assert len(vault) == 1
    # And it is requeue-able once someone reopens the uplink path.
    reopened = collector_for(vault)
    reopened.dead = collector.dead
    assert reopened.requeue_dead() == 1
    reopened.drain()
    assert len(vault) == 2


def test_close_racing_drain_accounts_for_every_snap(vault):
    """close() while another thread drains: each accepted snap ends up
    stored or dead-lettered exactly once — never lost, never doubled."""
    import threading

    collector = collector_for(vault, batch_size=2, queue_limit=64)
    total = 40
    for i in range(total):
        collector.submit(make_snap(payload=f"race-{i}"))
    drainer = threading.Thread(target=collector.drain)
    drainer.start()
    collector.close()
    drainer.join()
    stored = len(vault)
    assert stored + len(collector.dead) == total
    assert collector.pending() == 0
    assert stored == total  # no chaos: everything should have landed


def test_closed_collector_keeps_pinning_its_dead_letters(vault):
    from repro.fleet import RetentionPolicy

    collector = collector_for(vault, max_retries=1)
    collector.upload_chaos = lambda machine, snap, attempt: "drop"
    snap = make_snap(payload="pinned", clock=50)
    vault.put(snap)  # the stored twin GC would otherwise collect
    vault.put(make_snap(payload="keeper", clock=500))
    collector.submit(snap)
    collector.close()
    assert len(collector.dead) == 1
    plan = vault.compact(policy=RetentionPolicy(max_age=10), now=500)
    digest = next(iter(collector.pinned_digests()))
    assert digest not in plan.victim_digests
    assert digest in vault.index
