"""Concurrent multi-collector ingest: equivalence, crash-safety, healing.

The parallel pipeline must never trade correctness for throughput:

* interleaved ingest from several collector threads yields exactly the
  manifest set (order-normalized) and incident partition that a single
  serial collector produces;
* a kill -9 mid-batch tears at most the *final* line of each shard's
  manifest (single ``os.write`` per shard per batch), loading skips it,
  and ``rebuild_index()`` restores the torn entry from its blob;
* reopening a vault preloads the manifest digest set, so duplicates
  arriving after a restart dedupe (including the early, pre-compression
  check), and an orphaned blob (durable blob, lost manifest line) heals
  in place on its next arrival.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.fleet import (
    Collector,
    SnapVault,
    VaultQuery,
    content_digest,
    prepare_snap,
)
from repro.fleet.store import BLOB_SUFFIX, MANIFEST

from tests.fleet.test_store import make_snap


def fleet_snaps(count):
    """Distinct snaps with some group fan-outs for incident linkage."""
    snaps = []
    for i in range(count):
        snap = make_snap(
            machine=f"m{i % 3}",
            process=["web", "db", "cache"][i % 3],
            reason="group" if i % 7 == 1 else ["api", "unhandled"][i % 2],
            clock=100 + i,
            payload=i,
        )
        if snap.reason == "group":
            snap.detail = {
                "group": f"g{i // 7}",
                "initiator": "web",
                "initiator_reason": "unhandled",
            }
        snaps.append(snap)
    return snaps


# ----------------------------------------------------------------------
# Interleaved == serial
# ----------------------------------------------------------------------
def test_parallel_ingest_matches_serial(tmp_path):
    snaps = fleet_snaps(90)
    # Every collector's stream also re-submits some duplicates, so the
    # dedupe races (intra-batch, cross-collector) are exercised too.
    streams = [
        snaps[0::3] + snaps[10:20],
        snaps[1::3] + snaps[30:40],
        snaps[2::3] + snaps[50:60],
    ]

    serial = SnapVault(str(tmp_path / "serial"), shards=4)
    collector = Collector(serial, batch_size=8)
    for stream in streams:
        for snap in stream:
            collector.submit(snap)
    collector.drain()

    parallel = SnapVault(str(tmp_path / "parallel"), shards=4,
                         durability="batch")
    collectors = [
        Collector(parallel, batch_size=8, name=f"c{i}") for i in range(3)
    ]

    def feed(c, stream):
        for snap in stream:
            c.submit(snap)
        c.drain()

    threads = [
        threading.Thread(target=feed, args=(c, s))
        for c, s in zip(collectors, streams)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(parallel) == len(serial) == 90

    def normalized(vault):
        return {
            digest: (e.machine, e.process, e.reason, e.clock, e.size,
                     tuple(e.sync_ids), e.group, e.initiator,
                     e.initiator_reason, e.shard)
            for digest, e in vault.index.items()
        }

    assert normalized(parallel) == normalized(serial)
    # Both vaults assigned a dense seq range (order may differ).
    assert sorted(e.seq for e in parallel.index.values()) == list(range(90))

    def partition(vault):
        return sorted(
            sorted(e.digest for e in i.entries)
            for i in VaultQuery(vault).incidents()
        )

    assert partition(parallel) == partition(serial)

    # Reopening the parallel vault reproduces the same index state.
    reopened = SnapVault(str(tmp_path / "parallel"), shards=4,
                         durability="batch")
    assert normalized(reopened) == normalized(serial)
    assert partition(reopened) == partition(serial)


# ----------------------------------------------------------------------
# Kill -9 mid-batch
# ----------------------------------------------------------------------
KILL_SCRIPT = """
import sys, threading
from repro.fleet import Collector, SnapVault
from tests.fleet.test_parallel import fleet_snaps

vault = SnapVault(sys.argv[1], shards=4, durability="batch")
collectors = [Collector(vault, batch_size=16, name=f"c{i}") for i in range(2)]

def feed(c, offset):
    i = offset
    while True:  # run until killed
        for snap in fleet_snaps(4000)[i : i + 50]:
            c.submit(snap)
        c.drain()
        i = (i + 50) % 3000
        print("batch", i, flush=True)

threads = [
    threading.Thread(target=feed, args=(c, n * 1500), daemon=True)
    for n, c in enumerate(collectors)
]
for t in threads:
    t.start()
for t in threads:
    t.join()
"""


def test_kill_mid_batch_tears_at_most_last_line(tmp_path):
    root = str(tmp_path / "vault")
    script = tmp_path / "ingest_forever.py"
    script.write_text(KILL_SCRIPT)
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo, "src"), repo]
    )
    proc = subprocess.Popen(
        [sys.executable, str(script), root],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    # Wait until ingest is demonstrably mid-flight, then kill -9.
    assert proc.stdout.readline().startswith(b"batch")
    time.sleep(0.15)
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    valid = 0
    for shard in range(4):
        path = os.path.join(root, f"shard-{shard:02d}", MANIFEST)
        if not os.path.exists(path):
            continue
        raw = open(path, "rb").read().split(b"\n")
        if raw and raw[-1] == b"":
            raw.pop()
        for lineno, line in enumerate(raw):
            try:
                json.loads(line)
                valid += 1
            except ValueError:
                # Only the final line of a shard may be torn.
                assert lineno == len(raw) - 1, (shard, lineno)
    assert valid > 0

    vault = SnapVault(root, shards=4)
    assert len(vault) == valid  # torn tails skipped, everything else up

    # Every manifest entry's blob is present and loadable (manifest
    # lines commit only after their blobs are durable).
    for digest in list(vault.index)[:20]:
        snap, notes = vault.load(digest)
        assert snap is not None and notes == []

    # Blobs may exist without manifest lines (killed between blob and
    # manifest append); rebuild_index restores them from the archives.
    blobs = sum(
        name.endswith(BLOB_SUFFIX)
        for shard in range(4)
        for name in os.listdir(os.path.join(root, f"shard-{shard:02d}"))
    )
    assert blobs >= valid
    recovered = vault.rebuild_index()
    assert recovered == blobs
    assert len(vault) == blobs


# ----------------------------------------------------------------------
# Reopen dedupe + orphan healing (the regression satellite)
# ----------------------------------------------------------------------
def test_reopen_dedupes_resubmitted_snaps(tmp_path):
    root = str(tmp_path / "vault")
    snaps = fleet_snaps(12)
    vault = SnapVault(root, shards=4)
    for snap in snaps:
        vault.put(snap)

    reopened = SnapVault(root, shards=4)
    assert reopened.metrics.dedupe_hits == 0
    results = [reopened.put(snap) for snap in snaps]
    assert all(r.deduped for r in results)
    assert len(reopened) == 12
    assert reopened.metrics.dedupe_hits == 12
    assert reopened.metrics.ingested == 0


def test_reopen_early_dedupe_skips_compression(tmp_path):
    root = str(tmp_path / "vault")
    snaps = fleet_snaps(6)
    vault = SnapVault(root, shards=4)
    for snap in snaps:
        vault.put(snap)

    reopened = SnapVault(root, shards=4)
    # The pipelined path asks contains() before compressing: a reopened
    # vault must answer from the preloaded manifest digest set.
    prepared = [
        prepare_snap(s, reopened.compress_level, reopened.contains)
        for s in snaps
    ]
    assert all(p.early_deduped and p.data is None for p in prepared)
    results = reopened.put_batch(prepared)
    assert all(r.deduped for r in results)
    assert reopened.metrics.early_dedupe_hits == 6
    assert reopened.metrics.dedupe_hits == 6


def test_orphan_blob_heals_on_redelivery(tmp_path):
    root = str(tmp_path / "vault")
    snap = make_snap(payload=42)
    vault = SnapVault(root, shards=4)
    digest = vault.put(snap).digest

    # Simulate a kill between blob write and manifest append: blob on
    # disk, manifest line gone.
    entry = vault.index[digest]
    manifest = os.path.join(root, f"shard-{entry.shard:02d}", MANIFEST)
    os.unlink(manifest)
    idx = os.path.join(root, SnapVault.incident_index_path())
    if os.path.exists(idx):
        os.unlink(idx)

    reopened = SnapVault(root, shards=4)
    assert len(reopened) == 0
    assert reopened.contains(digest) is False  # not in any manifest
    result = reopened.put(snap)
    assert result.deduped  # healed, not re-stored
    assert reopened.metrics.manifest_heals == 1
    assert len(reopened) == 1
    loaded, notes = reopened.load(digest)
    assert loaded is not None and notes == []
    # The healed manifest line is durable: a fresh open sees it.
    assert len(SnapVault(root, shards=4)) == 1
