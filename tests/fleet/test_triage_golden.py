"""Golden regression: ``tbtrace top``/``report`` output is byte-stable.

The report document deliberately excludes vault paths and wall-clock
times, and every other field (digests, seqs, clocks, renderings) is a
deterministic function of the fixed-seed fleet fixture — so the JSON
forms must reproduce byte-for-byte.  The goldens live in
``tests/fleet/golden/``; regenerate after an intentional format change
with::

    TB_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \\
        tests/fleet/test_triage_golden.py
"""

import os

import pytest

from repro.tools.tb import main
from tests.fleet.test_incidents import run_two_peer_fanout

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def fixture_vault(tmp_path_factory):
    """The fixed-seed fleet fixture: one crasher, one bystander."""
    tmp = tmp_path_factory.mktemp("triage-golden")
    vault, _result = run_two_peer_fanout(tmp)
    return vault


def check_golden(name: str, produced: str):
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("TB_UPDATE_GOLDENS"):
        with open(path, "w") as fh:
            fh.write(produced)
    with open(path) as fh:
        expected = fh.read()
    assert produced == expected, (
        f"{name} drifted from its golden; if the change is intentional, "
        f"regenerate with TB_UPDATE_GOLDENS=1"
    )


def test_top_json_golden(fixture_vault, capsys):
    assert main(["top", "--vault", fixture_vault.root, "--json"]) == 0
    check_golden("top.jsonl", capsys.readouterr().out)


def test_report_json_golden(fixture_vault, capsys):
    assert main(["report", "--vault", fixture_vault.root, "--json"]) == 0
    check_golden("report.json", capsys.readouterr().out)


def test_report_text_golden(fixture_vault, capsys):
    assert main(["report", "--vault", fixture_vault.root]) == 0
    check_golden("report.txt", capsys.readouterr().out)


def test_top_listing_names_the_vault(fixture_vault, capsys):
    assert main(["top", "--vault", fixture_vault.root]) == 0
    out = capsys.readouterr().out
    # The human listing includes the (run-specific) vault path, so it
    # is smoke-checked, not golden-checked.
    assert out.startswith("1 crash bucket(s) in ")
    assert "(1/2 snap(s) bucketed)" in out
    assert "unhandled:DIVIDE_BY_ZERO" in out


def test_report_html_smoke(fixture_vault, capsys, tmp_path):
    out_path = str(tmp_path / "report.html")
    assert main([
        "report", "--vault", fixture_vault.root, "--html",
        "--out", out_path,
    ]) == 0
    assert "report written to" in capsys.readouterr().out
    with open(out_path) as fh:
        page = fh.read()
    # Well-formed enough to open: one document, balanced structure.
    assert page.startswith("<!DOCTYPE html>")
    assert page.count("<html") == page.count("</html>") == 1
    assert page.count("<body") == page.count("</body>") == 1
    assert page.count('<div class="bucket">') == page.count("</div>") == 1
    assert page.count("<pre>") == page.count("</pre>") == 1
    # The exemplar rendering made it in, escaped.
    assert "&lt;=== fault here" in page
    assert "unhandled:DIVIDE_BY_ZERO" in page


def test_report_json_out_matches_stdout_form(fixture_vault, capsys,
                                             tmp_path):
    out_path = str(tmp_path / "report.json")
    assert main([
        "report", "--vault", fixture_vault.root, "--json",
        "--out", out_path,
    ]) == 0
    capsys.readouterr()
    with open(out_path) as fh:
        written = fh.read()
    with open(os.path.join(GOLDEN_DIR, "report.json")) as fh:
        assert written == fh.read()
