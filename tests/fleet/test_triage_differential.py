"""Cross-seed triage differential against chaos ground truth.

The triage promise, scored as a clustering problem: runs of the *same*
underlying fault — across seeds, schedules, clock skews, and chaos
damage — must land in one bucket, and runs of *distinct* faults must
never share one.  Ground truth comes from construction: each item is a
(fault program | chaos scenario, seed) run whose true fault is known
before any evidence is damaged, and :func:`pairwise_scores` compares
the signature clustering against it.

Precision is asserted at exactly 1.0 — a wrongly-merged bucket sends
an engineer to the wrong diagnosis, so no seed may ever cause one.
Recall has a documented floor (:data:`RECALL_FLOOR`): damage may cost
a bucket (an unbucketed incident is a visible miss), but the sweep
shows the signature holds the same-fault runs together anyway.

The default lane runs a seed subset; the slow lane
(``pytest -m slow tests/fleet/test_triage_differential.py``) runs every
named chaos scenario and every catalogue fault under >= 10 seeds.
"""

import random

import pytest

from repro import TraceSession
from repro.chaos.inject import copy_snap, skew_clock
from repro.chaos.scenarios import SCENARIOS, run_scenario
from repro.fleet import pairwise_scores
from repro.reconstruct import signature_of_trace, snap_signature
from repro.runtime import RuntimeConfig, SnapPolicy

#: Documented recall floor for the full sweep.  Observed recall is 1.0
#: on every shipped seed; the floor leaves headroom for damage variants
#: that legitimately lose their bucket (a miss, never a merge).
RECALL_FLOOR = 0.9

#: Distinct fault programs: each carries a ``%ITERS%`` knob so seeded
#: runs differ in trace length (and therefore in everything a naive
#: trace hash would key on) while the fault identity stays fixed.
FAULTS = {
    "div-zero-main": """
int main() {
    int i; int acc; acc = 0;
    for (i = 0; i < %ITERS%; i = i + 1) { acc = acc + i; }
    int z;
    z = acc / (acc - acc);
    return 0;
}
""",
    "div-zero-helper": """
int boom(int x) {
    int y;
    y = 10 / x;
    return y;
}
int outer(int n) {
    return boom(n - n);
}
int main() {
    int i; int acc; acc = 0;
    for (i = 0; i < %ITERS%; i = i + 1) { acc = acc + 1; }
    acc = outer(acc);
    return 0;
}
""",
    "sleep-illegal": """
int main() {
    int i;
    for (i = 0; i < %ITERS%; i = i + 1) { i = i + 0; }
    sleep(0 - 5);
    return 0;
}
""",
    "wild-poke": """
int main() {
    int i;
    for (i = 0; i < %ITERS%; i = i + 1) { i = i + 0; }
    poke(99999999, 1);
    return 0;
}
""",
    "user-throw": """
int inner() {
    throw 123;
    return 0;
}
int main() {
    int i;
    for (i = 0; i < %ITERS%; i = i + 1) { i = i + 0; }
    inner();
    return 0;
}
""",
}

#: Which chaos scenarios actually contain a fault, and whose: process
#: name -> ground-truth fault label.  Every other scenario damages a
#: *clean* run — its snaps must stay unbucketed (asserted below).
SCENARIO_TRUTH = {
    "abrupt-kill": {
        # Each process parks at its own wait point when the kill lands;
        # three distinct fault sites, each its own bucket.
        "client": "kill:client",
        "frontend": "kill:frontend",
        "backend": "kill:backend",
    },
    "vault-machine-loss": {"client": "crash:client-div-zero"},
    # Federated scenarios lose the *west* vault at query time; the
    # client's crash snap lives in the east vault, so the partial
    # federated answer still contains the one true fault.
    "federated-vault-loss": {"client": "crash:client-div-zero"},
    "slow-vault-timeout": {"client": "crash:client-div-zero"},
}


def mine_fault(name: str, seed: int) -> str | None:
    """One seeded run of a catalogue fault -> its mined signature.

    Seeds vary the pre-crash trace length and apply an extreme post-hoc
    clock skew — the variation triage must see through.
    """
    rng = random.Random(seed)
    iters = 3 + rng.randrange(40)
    source = FAULTS[name].replace("%ITERS%", str(iters))
    session = TraceSession(
        process_name=name,
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        ),
    )
    session.add_minic(source, name="app", file_name="app.c")
    session.run()
    snap = copy_snap(session.runtime.snap_store.snaps[-1])
    skew_clock(snap, rng.randrange(1 << 34) - (1 << 33))
    return snap_signature(snap, session.mapfiles)


def mine_scenario(name: str, seed: int) -> dict[str, str | None]:
    """One seeded chaos run -> process name -> mined signature."""
    result = run_scenario(name, seed)
    trace = result.reconstruct()
    sigs: dict[str, str | None] = {}
    for process in trace.processes:
        signature = signature_of_trace(process)
        sigs[process.process_name] = (
            signature.render() if signature else None
        )
    return sigs


def run_differential(seeds, scenario_names=None):
    """Score the signature clustering against constructed ground truth.

    Returns ``(precision, recall, items)``; asserts along the way that
    faultless runs never mint a bucket.
    """
    predicted: dict[str, set] = {}
    truth: dict[str, set] = {}

    def put(item, label, sig):
        truth.setdefault(label, set()).add(item)
        if sig is not None:
            predicted.setdefault(sig, set()).add(item)

    total = 0
    for fault in FAULTS:
        for seed in seeds:
            put(("fault", fault, seed), f"fault:{fault}",
                mine_fault(fault, seed))
            total += 1
    for name in scenario_names if scenario_names is not None else SCENARIOS:
        labels = SCENARIO_TRUTH.get(name, {})
        for seed in seeds:
            for process, sig in mine_scenario(name, seed).items():
                label = labels.get(process)
                if label is None:
                    # No fault in this process: a signature here would
                    # be a fabricated crasher — worse than a miss.
                    assert sig is None, (
                        f"{name} seed {seed}: faultless process "
                        f"{process} minted signature {sig!r}"
                    )
                    continue
                put(("scenario", name, seed, process), label, sig)
                total += 1

    precision, recall = pairwise_scores(predicted, truth)
    return precision, recall, total


# ----------------------------------------------------------------------
# Default lane: seed subset, full fault/scenario coverage
# ----------------------------------------------------------------------
def test_cross_seed_differential_fast():
    precision, recall, items = run_differential(seeds=range(3))
    assert precision == 1.0, "distinct faults shared a bucket"
    assert recall >= RECALL_FLOOR
    assert items >= len(FAULTS) * 3  # the sweep actually ran


def test_same_fault_same_signature_across_seeds():
    # The core stability claim, stated directly: every catalogue fault
    # mines the identical rendered signature at every seed.
    for fault in FAULTS:
        sigs = {mine_fault(fault, seed) for seed in range(3)}
        assert len(sigs) == 1 and None not in sigs, (fault, sigs)


def test_distinct_faults_mine_distinct_signatures():
    mined = {fault: mine_fault(fault, 0) for fault in FAULTS}
    assert len(set(mined.values())) == len(FAULTS), mined
    # Same exception class, different frames: still distinct buckets.
    assert mined["div-zero-main"] != mined["div-zero-helper"]
    assert all(s.startswith("unhandled:") for s in mined.values())


# ----------------------------------------------------------------------
# Slow lane: every scenario and fault, >= 10 seeds each
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_cross_seed_differential_full():
    precision, recall, items = run_differential(seeds=range(10))
    assert precision == 1.0, "distinct faults shared a bucket"
    assert recall >= RECALL_FLOOR
    assert items >= len(FAULTS) * 10


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_signatures_stable_per_seed_full(name):
    labels = SCENARIO_TRUTH.get(name, {})
    per_process: dict[str, set] = {}
    for seed in range(10):
        for process, sig in mine_scenario(name, seed).items():
            if process in labels:
                per_process.setdefault(process, set()).add(sig)
            else:
                assert sig is None, (name, seed, process, sig)
    for process, sigs in per_process.items():
        # One bucket per true fault across all ten seeds.
        assert len(sigs) == 1 and None not in sigs, (name, process, sigs)
