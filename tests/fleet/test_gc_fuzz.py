"""GC crash-safety fuzz: kill -9 mid-compaction loses no live snap.

The invariant under test (ISSUE 5's tentpole): at *any* kill point
inside ``SnapVault.compact()`` or ``rebuild_index()``, reopening the
vault yields

* every retained (live) snap, bit-exact — nothing planned to survive
  is ever lost;
* per shard, either the pre- or the post-compaction view of that
  shard's victims — the tombstone line is the only commit point, so
  there is no in-between;
* no orphan blobs — interrupted deletions are finished at open
  (``gc_redo_deletes``), so ``rebuild_index()`` cannot resurrect a
  snap the tombstone already killed;
* an incident index that loads or rebuilds to the same bit-identical
  checkpoint as a from-scratch rebuild over the survivors.

Kills are *simulated*: ``vault._crash_hook`` raises at a seeded sample
of the labeled ``_gc_point`` sites (every spot a real SIGKILL could
land between syscalls), and the test abandons the vault object and
reopens from disk — exactly what the next process sees after kill -9.
One real ``SIGKILL``-a-subprocess test closes the loop on the
simulation itself.

The default lane runs a small seed sweep; the slow lane
(``pytest -m slow tests/fleet/test_gc_fuzz.py``) runs the full
200+ run sweep the acceptance criteria call for.
"""

import glob
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import RetentionPolicy, SnapVault
from repro.fleet.index import IncidentIndex
from repro.fleet.store import BLOB_SUFFIX
from tests.fleet.test_store import make_snap


class SimulatedKill(BaseException):
    """Raised by the crash hook; BaseException so no handler eats it."""


def blobs_on_disk(root):
    return {
        os.path.basename(p)[: -len(BLOB_SUFFIX)]
        for p in glob.glob(os.path.join(root, "shard-*", "*" + BLOB_SUFFIX))
    }


def seed_vault(root, rng, count):
    """A vault with a seeded mix of singletons and group incidents."""
    vault = SnapVault(root, shards=3)
    for i in range(count):
        snap = make_snap(
            machine=f"m{rng.randrange(3)}",
            process=f"p{i}",
            reason=rng.choice(["api", "crash", "assert"]),
            clock=100 + rng.randrange(40),
            payload=f"fuzz-{i}-{rng.random()}",
        )
        if rng.random() < 0.3:
            snap.detail.update({
                "group": f"g{rng.randrange(3)}",
                "initiator": "web",
                "initiator_reason": "crash",
            })
        vault.put(snap)
    vault.flush_index()
    return vault


def checkpoint_bytes(entries, root):
    """The canonical incidents.idx for this entry set."""
    index = IncidentIndex.rebuild(sorted(entries, key=lambda e: e.seq))
    path = index.persist(root)
    with open(path, "rb") as fh:
        return fh.read()


def crash_run(tmp_path, seed, ingest_during=False):
    """One fuzz iteration: ingest, compact, die at a sampled point,
    reopen, verify every invariant.  Returns the label died at."""
    rng = random.Random(seed)
    root = str(tmp_path / f"vault-{seed}")
    vault = seed_vault(root, rng, count=10 + rng.randrange(8))
    policy = RetentionPolicy(
        max_age=rng.choice([5, 10, 20]),
        max_entries_per_shard=rng.choice([None, 2, 4]),
    )
    plan = vault.plan_compaction(policy, now=125)
    if not plan.victims:
        # Pins swallowed every budget victim; a delete-everything pass
        # still exercises each kill point, so fuzz that instead.
        policy = RetentionPolicy(max_age=0, pin_open_incidents=False)
        plan = vault.plan_compaction(policy, now=200)
    now_used = plan.now
    retained = {e.digest for e in plan.retained}
    victims_by_shard = {}
    for e in plan.victims:
        victims_by_shard.setdefault(e.shard, set()).add(e.digest)

    # First pass: count the kill points, then die at a sampled one in
    # an identically-seeded second vault (same RNG draw order).
    points = []
    vault._crash_hook = points.append
    vault.compact(plan=plan)
    assert points, "compaction exposed no kill points"
    root = str(tmp_path / f"vault-{seed}-crash")
    replay = random.Random(seed)
    vault = seed_vault(root, replay, count=10 + replay.randrange(8))
    plan = vault.plan_compaction(policy, now=now_used)
    assert {e.digest for e in plan.retained} == retained
    target = rng.randrange(len(points))
    seen = []

    def hook(label):
        seen.append(label)
        if len(seen) - 1 == target:
            raise SimulatedKill(label)

    vault._crash_hook = hook
    died_at = None
    try:
        vault.compact(plan=plan)
    except SimulatedKill as kill:
        died_at = kill.args[0]
    assert died_at is not None, "sampled point was never reached"

    if ingest_during:
        # Interleave: the next writer shows up before any recovery.
        straggler = SnapVault(root, shards=3)
        straggler.put(make_snap(process="straggler", clock=130,
                                payload=f"straggler-{seed}"))
        retained = retained | {
            e.digest for e in straggler.index.values()
            if e.process == "straggler"
        }

    reopened = SnapVault(root, shards=3)
    live = set(reopened.index)

    # 1. No live snap lost, and it still loads bit-exact.
    assert retained <= live, f"lost live snaps dying at {died_at!r}"
    for digest in retained:
        snap, notes = reopened.load(digest)
        assert snap is not None and notes == []
    # 2. Per shard: strictly the pre- or the post-compaction view.
    for shard, victims in victims_by_shard.items():
        present = victims & live
        assert present in (victims, set()), (
            f"shard {shard} half-compacted dying at {died_at!r}: "
            f"{len(present)}/{len(victims)} victims survived"
        )
    # 3. No orphan blobs after redo-at-open.
    assert blobs_on_disk(root) == live, f"orphan blobs dying at {died_at!r}"
    # 4. rebuild_index() differential: the archive truth matches.
    rebuilt = reopened.rebuild_index()
    assert set(reopened.index) == live
    assert rebuilt == len(live)
    # 5. The incident index rebuilds bit-identically from the live set.
    entries = list(reopened.index.values())
    first = checkpoint_bytes(entries, root)
    again = checkpoint_bytes(entries, root)
    assert first == again
    loaded, how = IncidentIndex.load(root, entries)
    assert how in ("loaded", "caught-up", "rebuilt")
    assert loaded.persist(root) and open(
        os.path.join(root, reopened.incident_index_path()), "rb"
    ).read() == first
    return died_at


# ----------------------------------------------------------------------
# Default lane: a quick seeded sweep (every class of kill point shows
# up within a few dozen seeds).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_kill_mid_compaction_fuzz_fast(tmp_path, seed):
    crash_run(tmp_path, seed)


def test_kill_then_straggler_ingest_before_recovery(tmp_path):
    for seed in range(6):
        crash_run(tmp_path, 1000 + seed, ingest_during=True)


def test_kill_mid_rebuild_never_serves_stale_checkpoint(tmp_path):
    """Fuzz rebuild_index() the same way: at any kill point the
    on-disk checkpoint is gone or fresh, never pre-rebuild."""
    for seed in range(8):
        rng = random.Random(seed)
        root = str(tmp_path / f"rb-{seed}")
        vault = seed_vault(root, rng, count=10)
        digests = set(vault.index)
        points = []
        vault._crash_hook = points.append
        vault.rebuild_index()
        vault._crash_hook = None

        root2 = str(tmp_path / f"rb-{seed}-crash")
        vault = seed_vault(root2, random.Random(seed), count=10)
        target = rng.randrange(len(points))
        seen = []

        def hook(label):
            seen.append(label)
            if len(seen) - 1 == target:
                raise SimulatedKill(label)

        vault._crash_hook = hook
        with pytest.raises(SimulatedKill):
            vault.rebuild_index()
        reopened = SnapVault(root2, shards=3)
        assert set(reopened.index) == digests  # archives are the truth
        # Whatever checkpoint exists now agrees with the manifests.
        entries = list(reopened.index.values())
        loaded, _how = IncidentIndex.load(root2, entries)
        assert {
            d for c in loaded.components() for d in c.digests
        } == digests


# ----------------------------------------------------------------------
# Slow lane: the full acceptance sweep (>= 200 seeded kills).
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", range(200))
def test_kill_mid_compaction_fuzz_full(tmp_path, seed):
    crash_run(tmp_path, 31337 + seed, ingest_during=seed % 4 == 0)


# ----------------------------------------------------------------------
# One REAL kill -9: a subprocess compacting in a loop is SIGKILLed
# mid-pass; the survivor invariants must hold without simulation.
# ----------------------------------------------------------------------
GC_KILL_SCRIPT = """
import sys
from repro.fleet import RetentionPolicy, SnapVault
from tests.fleet.test_store import make_snap

root = sys.argv[1]
vault = SnapVault(root, shards=3)
clock = 100
for i in range(30):
    vault.put(make_snap(process=f"seed{i}", clock=clock + i,
                        payload=f"seed-{i}"))
vault.flush_index()
print("seeded", flush=True)
i = 0
while True:  # compact+refill forever until killed
    vault.compact(policy=RetentionPolicy(max_age=20), now=clock + 29)
    for j in range(10):
        clock += 1
        vault.put(make_snap(process=f"fill{i}-{j}", clock=clock + 29,
                            payload=f"fill-{i}-{j}"))
    print("pass", i, flush=True)
    i += 1
"""


def test_real_sigkill_mid_compaction(tmp_path):
    root = str(tmp_path / "vault")
    script = tmp_path / "gc_forever.py"
    script.write_text(GC_KILL_SCRIPT)
    repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([os.path.join(repo, "src"), repo])
    proc = subprocess.Popen(
        [sys.executable, str(script), root],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    assert proc.stdout.readline().startswith(b"seeded")
    assert proc.stdout.readline().startswith(b"pass")
    time.sleep(0.05)  # land inside a later compact()/refill cycle
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    reopened = SnapVault(root, shards=3)
    live = set(reopened.index)
    assert live  # recent fills always survive a max_age=20 horizon
    for digest in live:
        snap, notes = reopened.load(digest)
        assert snap is not None and notes == []
    # Heal-pending ingest orphans (blob written, manifest line lost)
    # are legal; deleted-snap leftovers are not.  rebuild_index turns
    # the former into entries and must find nothing tombstoned-dead.
    reopened.rebuild_index()
    assert blobs_on_disk(root) == set(reopened.index)
    assert live <= set(reopened.index)
