"""GC crash-safety fuzz: kill -9 mid-compaction loses no live snap.

The invariant under test (ISSUE 5's tentpole): at *any* kill point
inside ``SnapVault.compact()`` or ``rebuild_index()``, reopening the
vault yields

* every retained (live) snap, bit-exact — nothing planned to survive
  is ever lost;
* per shard, either the pre- or the post-compaction view of that
  shard's victims — the tombstone line is the only commit point, so
  there is no in-between;
* no orphan blobs — interrupted deletions are finished at open
  (``gc_redo_deletes``), so ``rebuild_index()`` cannot resurrect a
  snap the tombstone already killed;
* an incident index that loads or rebuilds to the same bit-identical
  checkpoint as a from-scratch rebuild over the survivors — including
  its crash-signature triage buckets (a seeded fraction of the fuzzed
  snaps are real faulting snaps that mine a signature at ingest);
* no open bucket ever loses its exemplar blob (the evidence a future
  ``tbtrace replay`` confirms the diagnosis against).

Kills are *simulated*: ``vault._crash_hook`` raises at a seeded sample
of the labeled ``_gc_point`` sites (every spot a real SIGKILL could
land between syscalls), and the test abandons the vault object and
reopens from disk — exactly what the next process sees after kill -9.
One real ``SIGKILL``-a-subprocess test closes the loop on the
simulation itself.

The default lane runs a small seed sweep; the slow lane
(``pytest -m slow tests/fleet/test_gc_fuzz.py``) runs the full
200+ run sweep the acceptance criteria call for.
"""

import glob
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import RetentionPolicy, SnapVault
from repro.fleet.index import IncidentIndex
from repro.fleet.store import BLOB_SUFFIX
from tests.fleet.test_store import make_snap


class SimulatedKill(BaseException):
    """Raised by the crash hook; BaseException so no handler eats it."""


def blobs_on_disk(root):
    return {
        os.path.basename(p)[: -len(BLOB_SUFFIX)]
        for p in glob.glob(os.path.join(root, "shard-*", "*" + BLOB_SUFFIX))
    }


#: One real faulting run, built once: copies with mutated placement
#: fields give distinct digests that all mine this one signature.
FAULT_SRC = """
int boom(int x) {
    return 10 / x;
}
int main() {
    int acc;
    acc = 7;
    acc = boom(acc - acc);
    return 0;
}
"""

FAULT_SIG = "unhandled:DIVIDE_BY_ZERO @ app.boom(app.c:3) < app.main"

_FAULT_CACHE = {}


def fault_snap_and_mapfiles():
    if not _FAULT_CACHE:
        from repro import TraceSession
        from repro.runtime import RuntimeConfig, SnapPolicy

        session = TraceSession(
            runtime_config=RuntimeConfig(
                policy=SnapPolicy.parse("snap on unhandled")
            )
        )
        session.add_minic(FAULT_SRC, name="app", file_name="app.c")
        session.run()
        _FAULT_CACHE["snap"] = session.runtime.snap_store.snaps[-1]
        _FAULT_CACHE["mapfiles"] = session.mapfiles
    return _FAULT_CACHE["snap"], _FAULT_CACHE["mapfiles"]


def fault_variant(machine, process, clock):
    """The cached crash re-placed on another machine/process/clock."""
    from repro.chaos.inject import copy_snap

    snap, _mapfiles = fault_snap_and_mapfiles()
    variant = copy_snap(snap)
    variant.machine_name = machine
    variant.process_name = process
    variant.clock = clock
    return variant


def seed_vault(root, rng, count):
    """A vault with a seeded mix of singletons, group incidents, and
    real faulting snaps (so the triage buckets are exercised too)."""
    vault = SnapVault(root, shards=3)
    _snap, mapfiles = fault_snap_and_mapfiles()
    for mapfile in mapfiles:
        vault.put_mapfile(mapfile)
    for i in range(count):
        if rng.random() < 0.25:
            snap = fault_variant(
                machine=f"m{rng.randrange(3)}",
                process=f"p{i}",
                clock=100 + rng.randrange(40),
            )
        else:
            snap = make_snap(
                machine=f"m{rng.randrange(3)}",
                process=f"p{i}",
                reason=rng.choice(["api", "crash", "assert"]),
                clock=100 + rng.randrange(40),
                payload=f"fuzz-{i}-{rng.random()}",
            )
        if rng.random() < 0.3:
            snap.detail.update({
                "group": f"g{rng.randrange(3)}",
                "initiator": "web",
                "initiator_reason": "crash",
            })
        vault.put(snap)
    vault.flush_index()
    return vault


def checkpoint_bytes(entries, root):
    """The canonical incidents.idx for this entry set."""
    index = IncidentIndex.rebuild(sorted(entries, key=lambda e: e.seq))
    path = index.persist(root)
    with open(path, "rb") as fh:
        return fh.read()


def crash_run(tmp_path, seed, ingest_during=False):
    """One fuzz iteration: ingest, compact, die at a sampled point,
    reopen, verify every invariant.  Returns the label died at."""
    rng = random.Random(seed)
    root = str(tmp_path / f"vault-{seed}")
    vault = seed_vault(root, rng, count=10 + rng.randrange(8))
    policy = RetentionPolicy(
        max_age=rng.choice([5, 10, 20]),
        max_entries_per_shard=rng.choice([None, 2, 4]),
    )
    plan = vault.plan_compaction(policy, now=125)
    if not plan.victims:
        # Pins swallowed every budget victim; a delete-everything pass
        # still exercises each kill point, so fuzz that instead.
        policy = RetentionPolicy(max_age=0, pin_open_incidents=False)
        plan = vault.plan_compaction(policy, now=200)
    now_used = plan.now
    retained = {e.digest for e in plan.retained}
    victims_by_shard = {}
    for e in plan.victims:
        victims_by_shard.setdefault(e.shard, set()).add(e.digest)

    # First pass: count the kill points, then die at a sampled one in
    # an identically-seeded second vault (same RNG draw order).
    points = []
    vault._crash_hook = points.append
    vault.compact(plan=plan)
    assert points, "compaction exposed no kill points"
    root = str(tmp_path / f"vault-{seed}-crash")
    replay = random.Random(seed)
    vault = seed_vault(root, replay, count=10 + replay.randrange(8))
    plan = vault.plan_compaction(policy, now=now_used)
    assert {e.digest for e in plan.retained} == retained
    target = rng.randrange(len(points))
    seen = []

    def hook(label):
        seen.append(label)
        if len(seen) - 1 == target:
            raise SimulatedKill(label)

    # Exemplars the plan keeps alive must still be loadable after any
    # kill (the "pinned open buckets never lose their exemplar" half
    # of the triage contract).
    planned_exemplars = (
        vault.incident_index.exemplar_digests() & retained
    )
    vault._crash_hook = hook
    died_at = None
    try:
        vault.compact(plan=plan)
    except SimulatedKill as kill:
        died_at = kill.args[0]
    assert died_at is not None, "sampled point was never reached"

    if ingest_during:
        # Interleave: the next writer shows up before any recovery.
        straggler = SnapVault(root, shards=3)
        straggler.put(make_snap(process="straggler", clock=130,
                                payload=f"straggler-{seed}"))
        retained = retained | {
            e.digest for e in straggler.index.values()
            if e.process == "straggler"
        }

    reopened = SnapVault(root, shards=3)
    live = set(reopened.index)

    # 1. No live snap lost, and it still loads bit-exact.
    assert retained <= live, f"lost live snaps dying at {died_at!r}"
    for digest in retained:
        snap, notes = reopened.load(digest)
        assert snap is not None and notes == []
    # 2. Per shard: strictly the pre- or the post-compaction view.
    for shard, victims in victims_by_shard.items():
        present = victims & live
        assert present in (victims, set()), (
            f"shard {shard} half-compacted dying at {died_at!r}: "
            f"{len(present)}/{len(victims)} victims survived"
        )
    # 3. No orphan blobs after redo-at-open.
    assert blobs_on_disk(root) == live, f"orphan blobs dying at {died_at!r}"
    # 4. rebuild_index() differential: the archive truth matches.
    rebuilt = reopened.rebuild_index()
    assert set(reopened.index) == live
    assert rebuilt == len(live)
    # 5. The incident index rebuilds bit-identically from the live set.
    entries = list(reopened.index.values())
    first = checkpoint_bytes(entries, root)
    again = checkpoint_bytes(entries, root)
    assert first == again
    loaded, how = IncidentIndex.load(root, entries)
    assert how in ("loaded", "caught-up", "rebuilt")
    assert loaded.persist(root) and open(
        os.path.join(root, reopened.incident_index_path()), "rb"
    ).read() == first
    # 6. Triage buckets rebuild bit-identically with the partition
    #    (rebuild_index above re-mined signatures from the archives).
    assert reopened.incident_index.to_bytes() == first
    live_sigs = {e.sig for e in entries if e.sig is not None}
    assert live_sigs <= {FAULT_SIG}
    assert set(reopened.incident_index.buckets) == live_sigs
    # 7. No open bucket lost its exemplar blob.
    for digest in planned_exemplars:
        assert digest in live, f"exemplar lost dying at {died_at!r}"
    for sig in reopened.incident_index.buckets:
        exemplar = reopened.incident_index.exemplar_digest(sig)
        snap, notes = reopened.load(exemplar)
        assert snap is not None and notes == [], (
            f"bucket {sig!r} lost its exemplar dying at {died_at!r}"
        )
    return died_at


# ----------------------------------------------------------------------
# Default lane: a quick seeded sweep (every class of kill point shows
# up within a few dozen seeds).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_kill_mid_compaction_fuzz_fast(tmp_path, seed):
    crash_run(tmp_path, seed)


def test_kill_then_straggler_ingest_before_recovery(tmp_path):
    for seed in range(6):
        crash_run(tmp_path, 1000 + seed, ingest_during=True)


def test_kill_mid_rebuild_never_serves_stale_checkpoint(tmp_path):
    """Fuzz rebuild_index() the same way: at any kill point the
    on-disk checkpoint is gone or fresh, never pre-rebuild."""
    for seed in range(8):
        rng = random.Random(seed)
        root = str(tmp_path / f"rb-{seed}")
        vault = seed_vault(root, rng, count=10)
        digests = set(vault.index)
        points = []
        vault._crash_hook = points.append
        vault.rebuild_index()
        vault._crash_hook = None

        root2 = str(tmp_path / f"rb-{seed}-crash")
        vault = seed_vault(root2, random.Random(seed), count=10)
        target = rng.randrange(len(points))
        seen = []

        def hook(label):
            seen.append(label)
            if len(seen) - 1 == target:
                raise SimulatedKill(label)

        vault._crash_hook = hook
        with pytest.raises(SimulatedKill):
            vault.rebuild_index()
        reopened = SnapVault(root2, shards=3)
        assert set(reopened.index) == digests  # archives are the truth
        # Whatever checkpoint exists now agrees with the manifests.
        entries = list(reopened.index.values())
        loaded, _how = IncidentIndex.load(root2, entries)
        assert {
            d for c in loaded.components() for d in c.digests
        } == digests


def test_bucket_exemplar_survives_every_kill_point(tmp_path):
    """With incident pins off, the exemplar pin alone keeps the open
    bucket's evidence alive — at every kill point inside compact()."""
    _snap, mapfiles = fault_snap_and_mapfiles()

    def build(root):
        vault = SnapVault(root, shards=3)
        for mapfile in mapfiles:
            vault.put_mapfile(mapfile)
        for i in range(4):  # old crashes: all but the exemplar expire
            vault.put(fault_variant(f"m{i}", f"crash{i}", clock=50 + i))
        for i in range(6):  # fresh filler keeps the vault non-empty
            vault.put(make_snap(process=f"fresh{i}", clock=200 + i,
                                payload=i))
        vault.flush_index()
        return vault

    policy = RetentionPolicy(max_age=20, pin_open_incidents=False)
    vault = build(str(tmp_path / "count"))
    assert set(vault.incident_index.buckets) == {FAULT_SIG}
    exemplar = vault.incident_index.exemplar_digest(FAULT_SIG)
    plan = vault.plan_compaction(policy, now=210)
    assert exemplar in plan.pinned
    assert len(plan.victims) == 3  # the exemplar's expired twins
    points = []
    vault._crash_hook = points.append
    vault.compact(plan=plan)

    rng = random.Random(9)
    targets = range(len(points)) if len(points) <= 16 else sorted(
        rng.sample(range(len(points)), 16)
    )
    for target in targets:
        root = str(tmp_path / f"kill-{target}")
        vault = build(root)
        plan = vault.plan_compaction(policy, now=210)
        seen = []

        def hook(label, target=target):
            seen.append(label)
            if len(seen) - 1 == target:
                raise SimulatedKill(label)

        vault._crash_hook = hook
        with pytest.raises(SimulatedKill):
            vault.compact(plan=plan)
        reopened = SnapVault(root, shards=3)
        # The exemplar blob survived the kill and still loads clean.
        snap, notes = reopened.load(exemplar)
        assert snap is not None and notes == [], f"died at point {target}"
        index = reopened.incident_index
        assert index.exemplar_digest(FAULT_SIG) == exemplar
        # And the bucket state agrees with a from-scratch rebuild.
        entries = list(reopened.index.values())
        assert IncidentIndex.rebuild(entries).to_bytes() == (
            index.to_bytes()
        )


# ----------------------------------------------------------------------
# Slow lane: the full acceptance sweep (>= 200 seeded kills).
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", range(200))
def test_kill_mid_compaction_fuzz_full(tmp_path, seed):
    crash_run(tmp_path, 31337 + seed, ingest_during=seed % 4 == 0)


# ----------------------------------------------------------------------
# One REAL kill -9: a subprocess compacting in a loop is SIGKILLed
# mid-pass; the survivor invariants must hold without simulation.
# ----------------------------------------------------------------------
GC_KILL_SCRIPT = """
import sys
from repro.fleet import RetentionPolicy, SnapVault
from tests.fleet.test_store import make_snap

root = sys.argv[1]
vault = SnapVault(root, shards=3)
clock = 100
for i in range(30):
    vault.put(make_snap(process=f"seed{i}", clock=clock + i,
                        payload=f"seed-{i}"))
vault.flush_index()
print("seeded", flush=True)
i = 0
while True:  # compact+refill forever until killed
    vault.compact(policy=RetentionPolicy(max_age=20), now=clock + 29)
    for j in range(10):
        clock += 1
        vault.put(make_snap(process=f"fill{i}-{j}", clock=clock + 29,
                            payload=f"fill-{i}-{j}"))
    print("pass", i, flush=True)
    i += 1
"""


def test_real_sigkill_mid_compaction(tmp_path):
    root = str(tmp_path / "vault")
    script = tmp_path / "gc_forever.py"
    script.write_text(GC_KILL_SCRIPT)
    repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([os.path.join(repo, "src"), repo])
    proc = subprocess.Popen(
        [sys.executable, str(script), root],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    assert proc.stdout.readline().startswith(b"seeded")
    assert proc.stdout.readline().startswith(b"pass")
    time.sleep(0.05)  # land inside a later compact()/refill cycle
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    reopened = SnapVault(root, shards=3)
    live = set(reopened.index)
    assert live  # recent fills always survive a max_age=20 horizon
    for digest in live:
        snap, notes = reopened.load(digest)
        assert snap is not None and notes == []
    # Heal-pending ingest orphans (blob written, manifest line lost)
    # are legal; deleted-snap leftovers are not.  rebuild_index turns
    # the former into entries and must find nothing tombstoned-dead.
    reopened.rebuild_index()
    assert blobs_on_disk(root) == set(reopened.index)
    assert live <= set(reopened.index)
