"""The remote vault query protocol: frames, pagination, deadlines.

A :class:`VaultService` serves the vault the standard crash fan-out
drained into; a :class:`RemoteVaultClient` must mirror the local
``VaultQuery`` answers exactly through CRC-checked frames, bounded
pages, and the deadline/retry discipline — and must convert every
transit fault into a typed, bounded failure, never a hang.
"""

import json
import random

import pytest

from repro.chaos.scenarios import build_vault_run
from repro.distributed.network import Network
from repro.fleet import SnapVault, VaultQuery
from repro.fleet.remote import (
    PROTOCOL,
    ProtocolError,
    RemoteVaultClient,
    VaultService,
    VaultTimeout,
    VaultUnavailable,
    decode_frame,
    encode_frame,
)


@pytest.fixture(scope="module")
def vault_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("remote") / "vault")
    vault, collector, session = build_vault_run(vault_root=root)
    session.network.run()
    collector.drain()
    return root


@pytest.fixture
def vault(vault_root):
    return SnapVault(vault_root)


def serve(vault, **client_kw):
    network = Network()
    server = VaultService(vault, name="vault", **{
        k: client_kw.pop(k) for k in ("page_limit",) if k in client_kw
    })
    network.register_vault_service(server)
    client = RemoteVaultClient(network, service="vault", **client_kw)
    return network, server, client


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def test_frame_round_trip():
    body = {"op": "select", "args": {"machine": "machine-a"}}
    assert decode_frame(encode_frame(body)) == body


def test_frame_corruption_is_detected_not_served():
    data = bytearray(encode_frame({"op": "hello"}))
    data[len(data) // 2] ^= 0xFF
    with pytest.raises(ProtocolError):
        decode_frame(bytes(data))


def test_frame_garbage_is_one_typed_error():
    with pytest.raises(ProtocolError, match="unparseable"):
        decode_frame(b"\x00\x01not json")


# ----------------------------------------------------------------------
# Server ops and error responses
# ----------------------------------------------------------------------
def test_hello_reports_protocol_and_inventory(vault):
    _, _, client = serve(vault)
    hello = client.hello()
    assert hello["proto"] == PROTOCOL
    assert hello["snaps"] == len(vault)
    assert hello["machines"] == vault.machines()


def test_protocol_mismatch_is_rejected(vault):
    server = VaultService(vault)
    response = server.handle({"proto": "tb-vault-query/99", "op": "hello"})
    assert not response["ok"]
    assert "protocol mismatch" in response["error"]


def test_unknown_and_underscore_ops_rejected(vault):
    server = VaultService(vault)
    for op in ("nope", "", "_page", "__init__"):
        response = server.handle({"proto": PROTOCOL, "op": op})
        assert not response["ok"], op
        assert "unknown op" in response["error"]


def test_server_error_becomes_error_frame_not_raise(vault):
    server = VaultService(vault)
    out = server.handle_wire(
        encode_frame(
            {"proto": PROTOCOL, "op": "fetch_blob", "args": {"digest": "zz"}}
        )
    )
    body = decode_frame(out)
    assert not body["ok"] and "zz" in body["error"]


def test_error_response_raises_protocol_error_client_side(vault):
    _, _, client = serve(vault)
    with pytest.raises(ProtocolError, match="no stored blob"):
        client.fetch_blob("not-a-digest")


# ----------------------------------------------------------------------
# VaultQuery parity over the wire
# ----------------------------------------------------------------------
def test_select_matches_local_query(vault):
    _, _, client = serve(vault)
    local = VaultQuery(vault)
    remote_docs = [e.to_dict() for e in client.select()]
    local_docs = [e.to_dict() for e in local.select()]
    assert remote_docs == local_docs
    # Filters travel too.
    assert [e.to_dict() for e in client.select(machine="machine-a")] == [
        e.to_dict() for e in local.select(machine="machine-a")
    ]


def test_incidents_match_local_query(vault):
    _, _, client = serve(vault)
    local = VaultQuery(vault)
    remote = [i.to_dict() for i in client.incidents()]
    assert remote == [i.to_dict() for i in local.incidents()]


def test_top_buckets_match_local_query(vault):
    _, _, client = serve(vault)
    local = VaultQuery(vault)
    remote = [b.to_dict() for b in client.top()]
    assert remote == [b.to_dict() for b in local.top()]


def test_pagination_is_transparent_and_counted(vault):
    _, server, client = serve(vault, page_limit=1)
    local = VaultQuery(vault)
    entries = client.select()
    assert [e.digest for e in entries] == [e.digest for e in local.select()]
    # One request per page, one page per entry at page_limit=1.
    assert client.metrics.remote_pages == len(entries)
    assert server.requests_served == len(entries)


def test_blob_fetch_crc_checked_and_reconstructs(vault):
    _, _, client = serve(vault)
    local = VaultQuery(vault)
    entry = local.select()[0]
    snap, notes = client.load(entry.digest)
    assert notes == []
    assert snap.process_name == entry.process
    trace, _ = client.reconstruct_entry(entry)
    assert trace.threads


def test_mapfiles_fetched_once_and_cached(vault):
    _, server, client = serve(vault)
    first = client.mapfiles()
    served = server.requests_served
    second = client.mapfiles()
    assert server.requests_served == served  # cache hit, no new requests
    assert {m.checksum for m in first} == {m.checksum for m in second}
    assert {m.checksum for m in first} == {
        m.checksum for m in vault.mapfiles()
    }


def test_reconstruct_incident_over_the_wire(vault):
    _, _, client = serve(vault)
    (incident,) = client.incidents()
    trace = client.reconstruct_incident(incident)
    assert {p.process_name for p in trace.processes} >= {"client"}


# ----------------------------------------------------------------------
# Deadlines, retries, chaos verdicts
# ----------------------------------------------------------------------
def test_drop_retries_then_vault_timeout(vault):
    network, _, client = serve(vault, max_retries=2, seed=4)
    network.query_chaos = lambda service, op, attempt: "drop"
    with pytest.raises(VaultTimeout, match="dropped"):
        client.hello()
    # Bounded by construction: (max_retries + 1) deadlines + backoffs.
    assert client.metrics.remote_retries == 2
    assert client.metrics.remote_timeouts == 1
    assert (
        client.cycles_spent
        <= 3 * client.deadline + 2 * client.backoff_max
    )


def test_corrupt_response_retried_to_success(vault):
    network, _, client = serve(vault, seed=1)
    verdicts = iter(["corrupt", None])
    network.query_chaos = lambda s, o, a: next(verdicts, None)
    hello = client.hello()
    assert hello["proto"] == PROTOCOL
    assert client.metrics.remote_retries == 1


def test_delay_past_deadline_discards_the_reply(vault):
    network, server, client = serve(vault, max_retries=0)
    network.query_chaos = lambda s, o, a: "delay"
    with pytest.raises(VaultTimeout, match="delayed"):
        client.hello()
    # The server *did* answer; the client just couldn't use it.
    assert server.requests_served == 1


def test_kill_server_then_unavailable(vault):
    network, server, client = serve(vault, max_retries=0)
    network.query_chaos = lambda s, o, a: "kill-server"
    with pytest.raises(VaultTimeout, match="died mid-stream"):
        client.hello()
    assert not server.alive
    network.query_chaos = None
    with pytest.raises(VaultUnavailable):
        client.hello()


def test_no_registered_service_is_unavailable(vault):
    network = Network()
    client = RemoteVaultClient(network, service="nowhere")
    with pytest.raises(VaultUnavailable):
        client.hello()


def test_retry_backoff_is_seeded_and_clamped(vault):
    def run(seed):
        network, _, client = serve(
            vault, seed=seed, max_retries=3,
            backoff_base=1000, backoff_max=2500,
        )
        network.query_chaos = lambda s, o, a: "drop"
        with pytest.raises(VaultTimeout):
            client.hello()
        return client.cycles_spent, client.metrics.remote_backoff_cycles

    a_spent, a_backoff = run(9)
    b_spent, b_backoff = run(9)
    c_spent, _ = run(10)
    assert (a_spent, a_backoff) == (b_spent, b_backoff)  # same seed
    # Clamp: three backoffs, none above backoff_max.
    assert a_backoff <= 3 * 2500


def test_wedged_server_costs_deadline_not_a_hang(vault):
    class StuckMachine:
        def _live_threads(self):
            return ["guest-thread"]

    network = Network()
    server = VaultService(vault, machine=StuckMachine())
    network.register_vault_service(server)
    client = RemoteVaultClient(network, service="vault", max_retries=1)
    assert server.wedged()
    with pytest.raises(VaultTimeout, match="unresponsive"):
        client.hello()
    assert server.requests_served == 0  # it never answered the wire


def test_charged_cycles_land_on_the_caller_machine(vault):
    class CallerMachine:
        cycles = 0

    machine = CallerMachine()
    network = Network()
    network.register_vault_service(VaultService(vault))
    client = RemoteVaultClient(network, service="vault", machine=machine)
    client.hello()
    assert machine.cycles == client.cycles_spent > 0


def test_entries_survive_json_round_trip(vault):
    """Wire docs are plain JSON: re-encoding them changes nothing."""
    _, _, client = serve(vault)
    for entry in client.select():
        doc = entry.to_dict()
        assert json.loads(json.dumps(doc)) == doc


def test_partial_select_respects_budget(vault):
    _, _, client = serve(vault, page_limit=1)
    # A budget of 0 cycles still fetches the first page, then stops.
    entries, truncated = client.select(budget=0, partial=True)
    assert truncated is True
    assert len(entries) == 1


def test_partial_mid_pagination_timeout_returns_prefix(vault):
    network, _, client = serve(vault, page_limit=1, max_retries=0)
    calls = {"n": 0}

    def chaos(service, op, attempt):
        calls["n"] += 1
        return "drop" if calls["n"] > 1 else None

    network.query_chaos = chaos
    entries, truncated = client.select(partial=True)
    assert truncated is True
    assert len(entries) == 1  # the page that made it
    # Without partial, the same failure propagates.
    calls["n"] = 0
    client2_network, _, client2 = serve(vault, page_limit=1, max_retries=0)
    client2_network.query_chaos = chaos
    with pytest.raises(VaultTimeout):
        client2.select()
