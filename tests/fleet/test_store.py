"""The sharded snap vault: dedupe, atomicity, manifests, index rebuild."""

import json
import os

import pytest

from repro.fleet.store import (
    BLOB_SUFFIX,
    MANIFEST,
    SnapVault,
    VaultError,
    content_digest,
)
from repro.runtime.archive import write_atomic
from repro.runtime.snap import SnapFile


def make_snap(
    machine="m1", process="p1", reason="api", clock=100, payload=0
) -> SnapFile:
    return SnapFile(
        reason=reason,
        detail={"code": payload},
        process_name=process,
        pid=7,
        machine_name=machine,
        clock=clock,
        modules=[],
        buffers=[],
        threads=[],
    )


@pytest.fixture
def vault(tmp_path):
    return SnapVault(str(tmp_path / "vault"), shards=4)


# ----------------------------------------------------------------------
# Store / dedupe / shards
# ----------------------------------------------------------------------
def test_put_and_load_roundtrip(vault):
    snap = make_snap()
    result = vault.put(snap)
    assert not result.deduped
    loaded, notes = vault.load(result.digest)
    assert notes == []
    assert loaded.to_dict() == snap.to_dict()


def test_content_hash_dedupe(vault):
    a = make_snap(payload=1)
    twin = make_snap(payload=1)  # same content, separate object
    other = make_snap(payload=2)
    r1 = vault.put(a)
    r2 = vault.put(twin)
    r3 = vault.put(other)
    assert r2.deduped and r2.digest == r1.digest
    assert not r3.deduped
    assert len(vault) == 2
    assert vault.metrics.dedupe_hits == 1
    assert vault.metrics.ingested == 2


def test_sharding_is_content_addressed(tmp_path):
    vault = SnapVault(str(tmp_path), shards=4)
    for i in range(24):
        vault.put(make_snap(payload=i))
    used = {e.shard for e in vault.index.values()}
    assert len(used) > 1  # 24 content hashes spread over 4 shards
    for entry in vault.index.values():
        assert entry.shard == vault.shard_of(entry.digest)
        assert os.path.exists(vault.blob_path(entry.digest))


def test_bad_shard_count_rejected(tmp_path):
    with pytest.raises(VaultError):
        SnapVault(str(tmp_path), shards=0)


def test_digest_stable_across_compression_level(tmp_path):
    snap = make_snap()
    assert content_digest(snap) == content_digest(make_snap())
    v1 = SnapVault(str(tmp_path / "a"), compress_level=1)
    v9 = SnapVault(str(tmp_path / "b"), compress_level=9)
    assert v1.put(snap).digest == v9.put(snap).digest


# ----------------------------------------------------------------------
# Select (the machine/process/reason/timestamp index)
# ----------------------------------------------------------------------
def test_select_filters(vault):
    vault.put(make_snap(machine="a", process="web", reason="hang", clock=10))
    vault.put(make_snap(machine="a", process="db", reason="api", clock=20))
    vault.put(make_snap(machine="b", process="web", reason="api", clock=30))

    assert len(vault.select()) == 3
    assert [e.machine for e in vault.select(machine="a")] == ["a", "a"]
    assert [e.process for e in vault.select(process="web")] == ["web", "web"]
    assert [e.reason for e in vault.select(reason="api")] == ["api", "api"]
    assert [e.clock for e in vault.select(since=15, until=25)] == [20]
    assert [e.clock for e in vault.select(machine="a", reason="api")] == [20]
    assert vault.machines() == ["a", "b"]


def test_select_in_ingest_order(vault):
    for clock in (30, 10, 20):
        vault.put(make_snap(clock=clock, payload=clock))
    assert [e.clock for e in vault.select()] == [30, 10, 20]
    assert [e.seq for e in vault.select()] == [0, 1, 2]


# ----------------------------------------------------------------------
# Atomicity
# ----------------------------------------------------------------------
def test_no_temp_files_left_behind(vault):
    for i in range(8):
        vault.put(make_snap(payload=i))
    for root, _dirs, files in os.walk(vault.root):
        assert not [f for f in files if ".tmp." in f], (root, files)


def test_write_atomic_failure_leaves_target_untouched(tmp_path, monkeypatch):
    target = tmp_path / "blob"
    target.write_bytes(b"old")

    monkeypatch.setattr(os, "replace", _boom)
    with pytest.raises(RuntimeError):
        write_atomic(b"new", str(target))
    assert target.read_bytes() == b"old"
    assert list(tmp_path.iterdir()) == [target]  # temp cleaned up


def _boom(src, dst):
    raise RuntimeError("kill -9 between write and rename")


# ----------------------------------------------------------------------
# Manifests: reopen, torn lines, rebuild from archives
# ----------------------------------------------------------------------
def test_reopen_restores_index(tmp_path):
    root = str(tmp_path)
    first = SnapVault(root)
    digests = [first.put(make_snap(payload=i)).digest for i in range(5)]
    second = SnapVault(root)
    assert sorted(second.index) == sorted(digests)
    assert [e.seq for e in second.select()] == [0, 1, 2, 3, 4]
    # Dedupe keeps working against the reloaded index.
    assert second.put(make_snap(payload=0)).deduped


def test_torn_manifest_line_skipped(tmp_path):
    root = str(tmp_path)
    vault = SnapVault(root, shards=1)
    vault.put(make_snap(payload=1))
    manifest = os.path.join(root, "shard-00", MANIFEST)
    with open(manifest, "a") as fh:
        fh.write('{"digest": "torn-mid-wr')  # kill -9 mid-append
    reopened = SnapVault(root, shards=1)
    assert len(reopened) == 1


def test_rebuild_index_from_archives(tmp_path):
    root = str(tmp_path)
    vault = SnapVault(root, shards=2)
    originals = {
        vault.put(make_snap(machine=f"m{i}", payload=i)).digest
        for i in range(6)
    }
    # Lose every manifest; blobs are the source of truth.
    for shard in range(2):
        os.unlink(os.path.join(root, f"shard-{shard:02d}", MANIFEST))
    empty = SnapVault(root, shards=2)
    assert len(empty) == 0
    recovered = empty.rebuild_index()
    assert recovered == 6
    assert set(empty.index) == originals
    assert empty.metrics.index_rebuilds == 1
    # Rebuilt manifests parse as JSON lines and reload cleanly.
    reloaded = SnapVault(root, shards=2)
    assert set(reloaded.index) == originals
    for shard in range(2):
        with open(os.path.join(root, f"shard-{shard:02d}", MANIFEST)) as fh:
            for line in fh:
                json.loads(line)


def test_store_bytes_counts_blobs(vault):
    vault.put(make_snap(payload=1))
    vault.put(make_snap(payload=2))
    total = sum(
        os.path.getsize(vault.blob_path(d)) for d in vault.index
    )
    assert vault.store_bytes() == total
    assert vault.metrics.bytes_written == total


def test_blob_files_named_by_digest(vault):
    digest = vault.put(make_snap()).digest
    assert vault.blob_path(digest).endswith(digest + BLOB_SUFFIX)
