"""Signature-stability fuzz: skew and salvage damage never move a bucket.

The precision stance, fuzzed: seeded skewed-clock and salvage-degraded
variants of the *same* incident must mine the identical signature —
and when damage destroys the evidence the signature needs, the variant
goes *unbucketed* (None), it never mints a different signature that
would merge into (or split off from) another bucket.

Deterministic cases pin the exact-identity claims (clock skew in any
amount, gaps in pre-fault history, damage to other machines' snaps);
a seeded sweep over the whole injector catalogue then checks the
weaker-but-critical invariant on every variant: ``sig in {baseline,
None}`` for all but a bounded, seeded handful whose shifted frames
still stay inside the same fault class.
"""

import random

import pytest

from repro import TraceSession
from repro.chaos.inject import (
    clobber_header,
    copy_snap,
    corrupt_archive,
    drop_sync_records,
    duplicate_sync_records,
    flip_bits,
    skew_clock,
    tear_archive,
    truncate_buffer,
    zero_words,
)
from repro.chaos.scenarios import run_scenario
from repro.reconstruct import signature_of_trace, snap_signature
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.archive import compress_snap, salvage_decompress
from repro.runtime.buffers import HEADER_WORDS

#: A call chain three frames deep, with enough pre-crash history that
#: prefix damage has room to land without touching the fault tail.
CRASH_SRC = """
int boom(int x) {
    int y;
    y = 10 / x;
    return y;
}
int outer(int n) {
    return boom(n - n);
}
int main() {
    int i; int acc; acc = 0;
    for (i = 0; i < 60; i = i + 1) { acc = acc + 1; }
    acc = outer(acc);
    return 0;
}
"""

BASE_SIG = (
    "unhandled:DIVIDE_BY_ZERO @ app.boom(app.c:4) < app.outer < app.main"
)

#: Bounds for the seeded degradation sweep (observed: 75% identical,
#: ~23% unbucketed, <2% frame-shifted within the same fault class).
MAX_OTHER_FRACTION = 0.05
MIN_SAME_FRACTION = 0.6


@pytest.fixture(scope="module")
def crashed():
    """One faulting run, mined once: (snap, mapfiles, baseline sig)."""
    session = TraceSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    session.add_minic(CRASH_SRC, name="app", file_name="app.c")
    session.run()
    snap = session.runtime.snap_store.snaps[-1]
    baseline = snap_signature(snap, session.mapfiles)
    assert baseline == BASE_SIG
    return snap, session.mapfiles, baseline


# ----------------------------------------------------------------------
# Exact identity: clock skew
# ----------------------------------------------------------------------
def test_clock_skew_never_changes_signature(crashed):
    snap, mapfiles, baseline = crashed
    rng = random.Random(7)
    amounts = [1 << 40, -(1 << 40), 1, -1]
    amounts += [rng.randrange(1 << 35) - (1 << 34) for _ in range(20)]
    for amount in amounts:
        variant = copy_snap(snap)
        skew_clock(variant, amount)
        assert snap_signature(variant, mapfiles) == baseline, amount


def test_scenario_skew_keeps_every_process_signature():
    # Distributed flavor: post-hoc skew on an abrupt-kill run's snaps
    # moves no process to a different bucket.
    result = run_scenario("abrupt-kill", 3)
    baseline = {
        p.process_name: signature_of_trace(p)
        for p in result.reconstruct().processes
    }
    assert all(sig is not None for sig in baseline.values())
    for shift in (1 << 36, -(1 << 35)):
        for snap in result.snaps:
            skew_clock(snap, shift)
        skewed = {
            p.process_name: signature_of_trace(p)
            for p in result.reconstruct().processes
        }
        assert skewed == baseline


# ----------------------------------------------------------------------
# Exact identity: gaps in pre-fault history
# ----------------------------------------------------------------------
def test_gaps_in_prefix_history_keep_signature(crashed):
    # Zeroed runs inside the loop region of the trace (after main's
    # entry, well before the crashing call chain) cost recovered steps,
    # not the signature: the backward frame scan only needs the tail.
    snap, mapfiles, baseline = crashed
    for start in (HEADER_WORDS + 8, HEADER_WORDS + 40, HEADER_WORDS + 80):
        variant = copy_snap(snap)
        buffer = max(
            (b for b in variant.buffers if len(b.words) > HEADER_WORDS),
            key=lambda b: len(b.words),
        )
        end = min(start + 12, len(buffer.words))
        for idx in range(start, end):
            buffer.words[idx] = 0
        assert snap_signature(variant, mapfiles) == baseline, start


def test_damage_to_other_machines_keeps_signature():
    # Partial-fleet evidence: wrecking the bystanders' snaps cannot
    # move the crasher's bucket (signatures are per-snap by design).
    result = run_scenario("vault-machine-loss", 5)
    crasher = [s for s in result.snaps if s.reason == "unhandled"]
    bystanders = [s for s in result.snaps if s.reason != "unhandled"]
    assert crasher and bystanders
    baseline = signature_of_trace(
        [
            p
            for p in result.reconstruct().processes
            if p.reason == "unhandled"
        ][0]
    ).render()
    rng = random.Random(5)
    for snap in bystanders:
        flip_bits(snap, rng, flips=8)
        zero_words(snap, rng, runs=2, run_len=16)
    damaged = [
        p
        for p in result.reconstruct().processes
        if p.reason == "unhandled"
    ]
    assert signature_of_trace(damaged[0]).render() == baseline


# ----------------------------------------------------------------------
# Seeded sweep: degraded variants never change fault class
# ----------------------------------------------------------------------
INJECTORS = (
    "flip-bits",
    "zero-words",
    "truncate-buffer",
    "clobber-header",
    "drop-sync",
    "duplicate-sync",
    "tear-archive",
    "corrupt-archive",
)


def damage(snap, injector: str, rng: random.Random):
    """Apply one injector to a copy; may return None (total loss)."""
    variant = copy_snap(snap)
    if injector == "flip-bits":
        flip_bits(variant, rng, flips=4)
    elif injector == "zero-words":
        zero_words(variant, rng, runs=1, run_len=10)
    elif injector == "truncate-buffer":
        truncate_buffer(variant, rng)
    elif injector == "clobber-header":
        clobber_header(variant, rng, words=1)
    elif injector == "drop-sync":
        drop_sync_records(variant, rng)
    elif injector == "duplicate-sync":
        duplicate_sync_records(variant, rng)
    elif injector == "tear-archive":
        torn, _note = tear_archive(compress_snap(variant), rng)
        variant, _notes = salvage_decompress(torn)
    elif injector == "corrupt-archive":
        rotten, _notes = corrupt_archive(compress_snap(variant), rng)
        variant, _load_notes = salvage_decompress(rotten)
    return variant


def sweep(crashed, seeds):
    snap, mapfiles, baseline = crashed
    same = unbucketed = 0
    shifted: list[str] = []
    for seed in seeds:
        rng = random.Random(seed)
        for injector in INJECTORS:
            variant = damage(snap, injector, rng)
            sig = (
                snap_signature(variant, mapfiles)
                if variant is not None
                else None
            )
            if sig == baseline:
                same += 1
            elif sig is None:
                unbucketed += 1
            else:
                shifted.append(f"{injector}/{seed}: {sig}")
    return same, unbucketed, shifted


def check_sweep(crashed, seeds):
    same, unbucketed, shifted = sweep(crashed, seeds)
    total = same + unbucketed + len(shifted)
    assert total == len(list(seeds)) * len(INJECTORS)
    # Degradation may cost the bucket, rarely shifts a frame, and the
    # shifted stragglers must still carry the same fault class — the
    # damage never relabels a divide-by-zero as something else.
    assert same >= MIN_SAME_FRACTION * total, (same, total)
    assert len(shifted) <= MAX_OTHER_FRACTION * total, shifted
    for entry in shifted:
        assert "unhandled:DIVIDE_BY_ZERO @" in entry, entry


def test_degraded_variants_never_change_fault_class(crashed):
    check_sweep(crashed, range(12))


@pytest.mark.slow
def test_degraded_variants_never_change_fault_class_full(crashed):
    check_sweep(crashed, range(200))


def test_skew_composed_with_gap_damage_keeps_signature(crashed):
    # The two tolerances compose: a skewed *and* degraded variant of
    # the same incident still lands in the same bucket.
    snap, mapfiles, baseline = crashed
    for seed in range(8):
        rng = random.Random(seed)
        variant = copy_snap(snap)
        skew_clock(variant, rng.randrange(1 << 34) - (1 << 33))
        buffer = max(
            (b for b in variant.buffers if len(b.words) > HEADER_WORDS),
            key=lambda b: len(b.words),
        )
        start = HEADER_WORDS + 8 + rng.randrange(60)
        for idx in range(start, min(start + 8, len(buffer.words))):
            buffer.words[idx] = 0
        assert snap_signature(variant, mapfiles) == baseline, seed
