"""Incident grouping: a fan-out is ONE incident, not N (§3.6.1)."""

import pytest

from repro.distributed import DistributedSession
from repro.fleet import SnapVault, VaultEntry, VaultQuery
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.sync import reset_runtime_ids

CRASHER = """
int main() {
    sleep(20000);
    int x;
    x = 1 / 0;
    return 0;
}
"""

BYSTANDER = """
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) {
        sleep(2000);
    }
    return 0;
}
"""


def run_two_peer_fanout(tmp_path, upload_chaos=None):
    """Two linked service-process peers; the web crash fans out to db."""
    reset_runtime_ids()
    vault = SnapVault(str(tmp_path / "vault"))
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled")
        )
    )
    m1 = session.add_machine("front-box")
    m2 = session.add_machine("back-box", clock_skew=1_000_000)
    session.services[m1].link(session.services[m2])
    for service in session.services.values():
        service.configure_group("petstore", ["web", "db"])
    session.attach_vault(vault, batch_size=2)
    if upload_chaos is not None:
        session.network.upload_chaos = upload_chaos
    session.add_process(m1, "web", CRASHER, start=True)
    session.add_process(m2, "db", BYSTANDER, start=True)
    result = session.run()
    return vault, result


# ----------------------------------------------------------------------
# The satellite: cross-peer fan-out collapses to one incident
# ----------------------------------------------------------------------
def test_cross_peer_fanout_is_one_incident(tmp_path):
    vault, _result = run_two_peer_fanout(tmp_path)
    assert len(vault) == 2  # web's trigger + db's group snap
    query = VaultQuery(vault)
    incidents = query.incidents()
    assert len(incidents) == 1
    incident = incidents[0]
    assert len(incident.entries) == 2
    assert incident.machines == ["back-box", "front-box"]
    assert incident.initiator() == "web"
    assert incident.groups == ["petstore"]
    assert "group-snap" in incident.links
    assert "#0" in incident.describe()


def test_fanout_one_incident_despite_dropped_upload(tmp_path):
    """The db peer's upload is chaos-dropped once; retry re-links it."""
    dropped = []

    def chaos(machine, snap, attempt):
        if machine == "back-box" and attempt == 1:
            dropped.append(snap.reason)
            return "drop"
        return None

    vault, result = run_two_peer_fanout(tmp_path, upload_chaos=chaos)
    assert dropped == ["group"]  # the fan-out snap itself was lost once
    assert vault.metrics.drops == 1
    assert vault.metrics.retries == 1
    assert result.collector.dead == []
    # Retry redelivered: still one incident spanning both peers.
    assert len(vault) == 2
    incidents = VaultQuery(vault).incidents()
    assert len(incidents) == 1
    assert incidents[0].machines == ["back-box", "front-box"]
    assert "group-snap" in incidents[0].links


def test_fanout_entries_carry_group_metadata(tmp_path):
    vault, _result = run_two_peer_fanout(tmp_path)
    group_entries = vault.select(reason="group")
    assert len(group_entries) == 1
    entry = group_entries[0]
    assert entry.group == "petstore"
    assert entry.initiator == "web"
    assert entry.initiator_reason == "unhandled"
    assert entry.machine == "back-box"


# ----------------------------------------------------------------------
# Union-find mechanics on synthetic manifest entries
# ----------------------------------------------------------------------
def entry(seq, machine="m", process="p", reason="api", sync_ids=(),
          group=None, initiator=None, initiator_reason=None):
    return VaultEntry(
        digest=f"digest-{seq:04d}",
        seq=seq,
        shard=0,
        machine=machine,
        process=process,
        pid=1,
        reason=reason,
        clock=seq * 100,
        size=64,
        sync_ids=list(sync_ids),
        group=group,
        initiator=initiator,
        initiator_reason=initiator_reason,
    )


@pytest.fixture
def query(tmp_path):
    return VaultQuery(SnapVault(str(tmp_path / "empty-vault")))


def test_initiators_own_snap_joins_the_fanout(query):
    entries = [
        entry(0, process="web", reason="unhandled"),  # the trigger
        entry(1, machine="m2", process="db", reason="group",
              group="g", initiator="web", initiator_reason="unhandled"),
        entry(2, machine="m3", process="cache", reason="group",
              group="g", initiator="web", initiator_reason="unhandled"),
        entry(3, process="other", reason="api"),  # unrelated
    ]
    incidents = query.incidents(entries)
    assert [len(i.entries) for i in incidents] == [3, 1]
    assert incidents[0].links == {"group-snap"}
    assert incidents[1].links == set()
    assert "singleton" in incidents[1].describe()


def test_sync_ids_link_snaps_across_machines(query):
    entries = [
        entry(0, machine="a", sync_ids=[11, 12]),
        entry(1, machine="b", sync_ids=[12, 13]),
        entry(2, machine="c", sync_ids=[13]),
        entry(3, machine="d", sync_ids=[99]),
    ]
    incidents = query.incidents(entries)
    assert [len(i.entries) for i in incidents] == [3, 1]
    assert incidents[0].links == {"sync-link"}
    assert incidents[0].machines == ["a", "b", "c"]


def test_window_splits_cross_run_sync_collisions(query):
    # Two runs in one vault: runtime ids were reset, so both runs carry
    # logical thread 7.  A window keeps them apart.
    entries = [
        entry(0, machine="a", sync_ids=[7]),
        entry(1, machine="b", sync_ids=[7]),
        entry(50, machine="a", sync_ids=[7]),
        entry(51, machine="b", sync_ids=[7]),
    ]
    assert len(query.incidents(entries)) == 1  # unwindowed: all merge
    windowed = query.incidents(entries, window=10)
    assert [len(i.entries) for i in windowed] == [2, 2]
    assert all(i.links == {"sync-link"} for i in windowed)


def test_group_and_sync_links_compose(query):
    entries = [
        entry(0, process="web", reason="unhandled", sync_ids=[5]),
        entry(1, machine="m2", process="db", reason="group",
              group="g", initiator="web", initiator_reason="unhandled"),
        entry(2, machine="m3", process="api", sync_ids=[5]),
    ]
    incidents = query.incidents(entries)
    assert len(incidents) == 1
    assert incidents[0].links == {"group-snap", "sync-link"}


def test_incidents_ordered_by_first_ingest(query):
    entries = [
        entry(0, machine="late", sync_ids=[1]),
        entry(1, machine="early", sync_ids=[2]),
        entry(2, machine="late", sync_ids=[1]),
    ]
    incidents = query.incidents(entries)
    assert incidents[0].incident_id == 0
    assert incidents[0].machines == ["late"]
    assert incidents[1].machines == ["early"]
    assert query.metrics.incidents_built == 2
