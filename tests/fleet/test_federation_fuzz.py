"""Seeded chaos fuzz over the federated query path.

The acceptance bar from the issue: across at least 100 seeds of
``query_chaos`` verdicts the federation must never hang (bounded
simulated cycles) and never raise; the :class:`FederationReport` must
name every degraded vault; the merged answer must always be a correct
subset of the ground truth; and a zero-chaos seed must be bit-identical
to the same query against one merged vault.

Transport chaos never damages the vaults on disk, so the fleet is built
once per module and each seed only rebuilds the cheap parts: a fresh
``Network``, servers, and clients.
"""

import json
import random

import pytest

from repro.chaos.scenarios import (
    FEDERATION_VICTIM,
    build_federated_fleet,
    run_scenario,
    serve_federation,
)
from repro.distributed.network import Network
from repro.fleet import (
    SnapVault,
    VaultQuery,
    canonical_buckets,
    canonical_entries,
    canonical_incidents,
)
from repro.fleet.federation import (
    COVERAGE_DEGRADED,
    COVERAGE_FULL,
    COVERAGE_PARTIAL,
)

SEEDS = range(120)
VERDICTS = ["drop", "delay", "corrupt", "kill-server"]
# Per federated call with max_retries=1: two deadline-priced attempts
# plus one clamped backoff, per page, with room for the healthy pages.
CYCLE_BOUND = 1_000_000


@pytest.fixture(scope="module")
def fuzz_fleet(tmp_path_factory):
    base = tmp_path_factory.mktemp("federation-fuzz")
    roots = {
        "vault-east": str(base / "east"),
        "vault-west": str(base / "west"),
    }
    vaults, session = build_federated_fleet(roots)
    merged = SnapVault(str(base / "merged"), shards=4)
    for mapfile in session.mapfiles:
        merged.put_mapfile(mapfile)
    for vault in vaults.values():
        for entry in vault.select():
            snap, _ = vault.load(entry.digest)
            merged.put(snap)
    local = VaultQuery(merged)
    truth = {
        "digests": {e.digest for e in local.select()},
        "select": canon(canonical_entries(local.select())),
        "incidents": canon(canonical_incidents(local.incidents())),
        "top": canon(canonical_buckets(local.top())),
    }
    return roots, truth


def canon(docs) -> str:
    return json.dumps(docs, sort_keys=True)


def assign_verdicts(roots, rng):
    """Each vault independently healthy (p=1/2) or one constant fault."""
    return {
        name: None if rng.random() < 0.5 else rng.choice(VERDICTS)
        for name in roots
    }


def run_seed(roots, truth, seed):
    rng = random.Random(seed)
    vaults = {name: SnapVault(root) for name, root in roots.items()}
    network = Network()
    federated, clients = serve_federation(vaults, network, rng=rng)
    verdicts = assign_verdicts(roots, rng)
    network.query_chaos = lambda service, op, attempt: verdicts[service]

    entries, report = federated.select()
    incidents, _ = federated.incidents()
    buckets, _ = federated.top()

    healthy = {name for name, verdict in verdicts.items() if verdict is None}
    statuses = {v.name: v.status for v in report.vaults}

    # Every vault accounted for, exactly once.
    assert set(statuses) == set(roots)
    # A constant fault verdict can never end "ok"; a healthy vault must.
    for name, verdict in verdicts.items():
        if verdict is None:
            assert statuses[name] == "ok", (seed, name, statuses)
        else:
            assert statuses[name] != "ok", (seed, name, verdicts, statuses)
    # The report's degraded list is exactly the non-answering vaults.
    answered = {v.name for v in report.vaults if v.answered}
    assert set(report.degraded_vaults()) == set(roots) - answered
    # Coverage ladder is consistent with the statuses.
    if answered == set(roots) and all(
        s == "ok" for s in statuses.values()
    ):
        assert report.coverage == COVERAGE_FULL
    elif answered:
        assert report.coverage == COVERAGE_PARTIAL
    else:
        assert report.coverage == COVERAGE_DEGRADED

    # Results are always a correct subset of the ground truth.
    digests = {e.digest for e in entries}
    assert digests <= truth["digests"], seed
    for incident in incidents:
        assert {e.digest for e in incident.entries} <= truth["digests"]
    assert sum(b["count"] for b in buckets) <= len(truth["digests"])

    # Bounded simulated time: no hang, ever.
    for name, client in clients.items():
        assert client.cycles_spent <= CYCLE_BOUND, (seed, name)

    # Zero chaos must reproduce the merged vault bit for bit.
    if healthy == set(roots):
        assert canon(canonical_entries(entries)) == truth["select"]
        assert canon(canonical_incidents(incidents)) == truth["incidents"]
        assert canon(canonical_buckets(buckets)) == truth["top"]
    return report.coverage


def test_fuzz_sweep_no_hang_no_raise_named_losses(fuzz_fleet):
    roots, truth = fuzz_fleet
    coverages = [run_seed(roots, truth, seed) for seed in SEEDS]
    # The sweep genuinely exercised the whole coverage ladder.
    assert coverages.count(COVERAGE_FULL) >= 10
    assert coverages.count(COVERAGE_PARTIAL) >= 10
    assert coverages.count(COVERAGE_DEGRADED) >= 10


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", ["federated-vault-loss", "slow-vault-timeout"]
)
def test_federated_scenarios_seed_sweep(name):
    for seed in range(10):
        result = run_scenario(name, seed=seed)
        federation = result.federation
        assert federation["coverage"] == COVERAGE_PARTIAL, seed
        assert federation["degraded"] == [FEDERATION_VICTIM], seed
        assert any(
            FEDERATION_VICTIM in note for note in result.injected
        ), seed
        # The surviving region's evidence still reconstructs.
        trace = result.reconstruct(strict=False)
        assert {p.process_name for p in trace.processes} >= {"client"}
