"""Retention policy, compaction planning, and the crash-safe GC pass."""

import glob
import json
import os
import threading

import pytest

from repro.fleet import (
    RetentionError,
    RetentionPolicy,
    SnapVault,
    VaultQuery,
)
from repro.fleet.collector import Collector
from repro.fleet.store import BLOB_SUFFIX, MANIFEST, TOMBSTONE_KEY
from tests.fleet.test_store import make_snap


@pytest.fixture
def vault(tmp_path):
    return SnapVault(str(tmp_path / "vault"), shards=4)


def fill(vault, count=20, reason="api", clock0=100, group=None):
    """Store ``count`` distinct snaps, clocks ``clock0..clock0+count-1``."""
    digests = []
    for i in range(count):
        snap = make_snap(
            machine=f"m{i % 3}", process=f"p{i}", reason=reason,
            clock=clock0 + i, payload=i,
        )
        if group is not None:
            snap.detail.update(group)
        digests.append(vault.put(snap).digest)
    return digests


def blobs_on_disk(vault):
    return {
        os.path.basename(p)[: -len(BLOB_SUFFIX)]
        for p in glob.glob(os.path.join(vault.root, "shard-*", "*" + BLOB_SUFFIX))
    }


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
def test_unbounded_policy_refused(vault):
    fill(vault, 3)
    with pytest.raises(RetentionError):
        vault.plan_compaction(RetentionPolicy())


def test_negative_budget_refused():
    with pytest.raises(RetentionError):
        RetentionPolicy(max_age=-1)
    with pytest.raises(RetentionError):
        RetentionPolicy(max_entries_per_shard=-5)


def test_compact_requires_exactly_one_of_policy_or_plan(vault):
    from repro.fleet.store import VaultError

    with pytest.raises(VaultError):
        vault.compact()
    with pytest.raises(VaultError):
        vault.compact(
            policy=RetentionPolicy(max_age=1),
            plan=vault.plan_compaction(RetentionPolicy(max_age=1)),
        )


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
def test_max_age_expires_old_snaps(vault):
    fill(vault, 20, clock0=100)  # clocks 100..119
    plan = vault.plan_compaction(RetentionPolicy(max_age=10), now=125)
    # horizon 115: clocks 100..114 expire
    assert {e.clock for e in plan.victims} == set(range(100, 115))
    assert {e.clock for e in plan.retained} == set(range(115, 120))
    assert plan.reclaimed_bytes == sum(e.size for e in plan.victims)


def test_now_defaults_to_newest_clock(vault):
    fill(vault, 10, clock0=100)  # newest clock 109
    plan = vault.plan_compaction(RetentionPolicy(max_age=4))
    assert plan.now == 109
    assert {e.clock for e in plan.retained} == set(range(105, 110))


def test_max_entries_per_shard_keeps_newest(vault):
    fill(vault, 40)
    plan = vault.plan_compaction(RetentionPolicy(max_entries_per_shard=2))
    by_shard = {}
    for e in plan.retained:
        by_shard.setdefault(e.shard, []).append(e)
    for shard, kept in by_shard.items():
        assert len(kept) <= 2
        # Every victim in this shard is older (lower seq) than the kept.
        victims = [v for v in plan.victims if v.shard == shard]
        if victims and kept:
            assert max(v.seq for v in victims) < min(k.seq for k in kept)


def test_max_bytes_per_shard_budget(vault):
    fill(vault, 40)
    entries = list(vault.index.values())
    one = max(e.size for e in entries)
    plan = vault.plan_compaction(
        RetentionPolicy(max_bytes_per_shard=one)
    )
    by_shard = {}
    for e in plan.retained:
        by_shard.setdefault(e.shard, []).append(e)
    for kept in by_shard.values():
        assert sum(e.size for e in kept) <= one


# ----------------------------------------------------------------------
# Pins
# ----------------------------------------------------------------------
def test_explicit_pin_overrides_budget(vault):
    digests = fill(vault, 10, clock0=100)
    pinned = digests[0]  # oldest — would expire
    plan = vault.plan_compaction(
        RetentionPolicy(max_age=2, pin_digests=frozenset({pinned})),
        now=109,
    )
    assert pinned not in plan.victim_digests
    assert pinned in plan.pinned
    assert vault.compact(plan=plan) is plan
    assert pinned in vault.index
    assert vault.metrics.pins_honored == len(plan.pinned) > 0


def test_pin_source_protects_dead_letter_digests(vault):
    digests = fill(vault, 10, clock0=100)
    protected = set(digests[:3])
    vault.add_pin_source(lambda: set(protected))
    plan = vault.plan_compaction(RetentionPolicy(max_age=0), now=200)
    assert not (protected & plan.victim_digests)
    assert protected <= set(plan.pinned)
    # Without the source everything goes.
    vault._pin_sources.clear()
    plan2 = vault.plan_compaction(RetentionPolicy(max_age=0), now=200)
    assert protected <= plan2.victim_digests


def test_pin_dead_letters_false_ignores_sources(vault):
    digests = fill(vault, 5, clock0=100)
    vault.add_pin_source(lambda: set(digests))
    plan = vault.plan_compaction(
        RetentionPolicy(max_age=0, pin_dead_letters=False), now=200
    )
    assert plan.victim_digests == set(digests)


def test_dying_pin_source_never_blocks_gc(vault):
    fill(vault, 5, clock0=100)

    def broken():
        raise RuntimeError("collector went away")

    vault.add_pin_source(broken)
    plan = vault.plan_compaction(RetentionPolicy(max_age=0), now=200)
    assert len(plan.victims) == 5  # its pins lapse, GC proceeds


def test_collector_queue_and_dead_letters_are_pinned(vault):
    fill(vault, 6, clock0=100)
    collector = Collector(vault, max_retries=1, batch_size=1, seed=7)
    collector.upload_chaos = lambda m, s, a: "drop"
    dead_snap = make_snap(process="dead", clock=50, payload="dead")
    vault.put(dead_snap)  # the vault's copy of the dead letter's content
    collector.submit(dead_snap)
    collector.drain()
    assert collector.dead  # chaos dropped it into the dead-letter list
    plan = vault.plan_compaction(RetentionPolicy(max_age=0), now=500)
    assert not (collector.pinned_digests() & plan.victim_digests)
    vault.compact(plan=plan)
    for digest in collector.pinned_digests():
        assert digest in vault.index


# ----------------------------------------------------------------------
# Open-incident atomicity: never collect part of an incident
# ----------------------------------------------------------------------
def group_detail(initiator="web", reason="crash"):
    return {"group": "petstore", "initiator": initiator,
            "initiator_reason": reason}


def test_open_incident_never_collected(vault):
    # Two group-linked snaps: one old (would expire), one new (retained).
    old = make_snap(machine="a", process="web", reason="group", clock=100,
                    payload="old")
    old.detail.update(group_detail())
    new = make_snap(machine="b", process="db", reason="group", clock=200,
                    payload="new")
    new.detail.update(group_detail())
    d_old = vault.put(old).digest
    d_new = vault.put(new).digest
    fill(vault, 5, clock0=100)  # unlinked old snaps that do expire
    plan = vault.plan_compaction(RetentionPolicy(max_age=10), now=205)
    # The incident is open (its new member is retained): the old member
    # is pinned, while the unlinked clock-100 snaps are collected.
    assert d_old not in plan.victim_digests
    assert d_old in plan.pinned
    assert len(plan.victims) == 5
    vault.compact(plan=plan)
    assert d_old in vault.index and d_new in vault.index
    query = VaultQuery(vault)
    incident = query.incident_of(d_new)
    assert incident is not None and len(incident.entries) == 2


def test_closed_incident_collected_whole(vault):
    # Both members old: the incident is closed, both go together.
    for name, payload in (("web", "x"), ("db", "y")):
        snap = make_snap(machine=name, process=name, reason="group",
                         clock=100, payload=payload)
        snap.detail.update(group_detail())
        vault.put(snap)
    keeper = vault.put(make_snap(clock=200, payload="keep")).digest
    plan = vault.plan_compaction(RetentionPolicy(max_age=10), now=205)
    assert len(plan.victims) == 2
    vault.compact(plan=plan)
    assert set(vault.index) == {keeper}


def test_no_pin_incidents_allows_splitting(vault):
    old = make_snap(machine="a", process="web", reason="group", clock=100,
                    payload="old")
    old.detail.update(group_detail())
    new = make_snap(machine="b", process="db", reason="group", clock=200,
                    payload="new")
    new.detail.update(group_detail())
    d_old = vault.put(old).digest
    vault.put(new)
    plan = vault.plan_compaction(
        RetentionPolicy(max_age=10, pin_open_incidents=False), now=205
    )
    assert d_old in plan.victim_digests


# ----------------------------------------------------------------------
# Dry run == real run; the applied plan is exact
# ----------------------------------------------------------------------
def test_dry_run_plan_is_exactly_what_gc_deletes(vault):
    fill(vault, 30, clock0=100)
    policy = RetentionPolicy(max_age=12)
    dry = vault.plan_compaction(policy, now=125)
    before = set(vault.index)
    applied = vault.compact(policy=policy, now=125)
    assert applied.victim_digests == dry.victim_digests
    assert set(vault.index) == before - dry.victim_digests
    assert blobs_on_disk(vault) == set(vault.index)


def test_compact_empty_plan_is_a_noop(vault):
    digests = fill(vault, 5, clock0=100)
    plan = vault.compact(policy=RetentionPolicy(max_age=1000), now=104)
    assert plan.victims == []
    assert set(vault.index) == set(digests)
    assert vault.metrics.compactions == 1
    assert vault.metrics.blobs_deleted == 0


# ----------------------------------------------------------------------
# Durability: the compacted vault reopens to exactly the survivors
# ----------------------------------------------------------------------
def test_compacted_vault_reopens_identically(vault):
    fill(vault, 24, clock0=100)
    vault.flush_index()
    vault.compact(policy=RetentionPolicy(max_age=10), now=130)
    survivors = dict(vault.index)
    reopened = SnapVault(vault.root, shards=4)
    assert set(reopened.index) == set(survivors)
    for digest, entry in reopened.index.items():
        assert entry.seq == survivors[digest].seq
    # Every survivor still loads, strict mode.
    for digest in reopened.index:
        snap, notes = reopened.load(digest)
        assert snap is not None and notes == []
    assert blobs_on_disk(reopened) == set(reopened.index)


def test_manifest_rewrite_drops_tombstones(vault):
    fill(vault, 20, clock0=100)
    vault.compact(policy=RetentionPolicy(max_age=5), now=125)
    for shard in range(vault.shards):
        path = os.path.join(vault.root, f"shard-{shard:02d}", MANIFEST)
        if not os.path.exists(path):
            continue
        for line in open(path):
            if line.strip():
                assert TOMBSTONE_KEY not in json.loads(line)


def test_tombstone_without_rewrite_still_loads_post_view(vault):
    """A kill after the tombstone lands but before the manifest rewrite
    must reopen to the post-compaction view (the tombstone is the
    commit point)."""
    fill(vault, 20, clock0=100)
    plan = vault.plan_compaction(RetentionPolicy(max_age=5), now=125)

    class Stop(Exception):
        pass

    seen = []

    def crash(label):
        seen.append(label)
        if label.startswith("tombstoned-"):
            raise Stop

    vault._crash_hook = crash
    with pytest.raises(Stop):
        vault.compact(plan=plan)
    vault._crash_hook = None
    reopened = SnapVault(vault.root, shards=4)
    # At least the first tombstoned shard's victims are gone; no victim
    # entry that was tombstoned survives, and no live entry was lost.
    retained = {e.digest for e in plan.retained}
    assert retained <= set(reopened.index)
    first_shard = int(seen[-1].split("-")[-1])
    for e in plan.victims:
        if e.shard == first_shard:
            assert e.digest not in reopened.index
    # The interrupted deletions were finished at open.
    assert blobs_on_disk(reopened) == set(reopened.index)
    assert reopened.metrics.gc_redo_deletes > 0


def test_reingest_after_compaction_resurrects(vault):
    snap = make_snap(clock=100, payload="victim")
    digest = vault.put(snap).digest
    vault.put(make_snap(clock=200, payload="keeper"))
    vault.compact(policy=RetentionPolicy(max_age=10), now=205)
    assert digest not in vault.index
    again = vault.put(snap)
    assert not again.deduped and again.digest == digest
    reopened = SnapVault(vault.root, shards=4)
    assert digest in reopened.index  # entry line after tombstone wins
    loaded, notes = reopened.load(digest)
    assert notes == [] and loaded.to_dict() == snap.to_dict()


# ----------------------------------------------------------------------
# Incident checkpoint hygiene
# ----------------------------------------------------------------------
def test_compact_rewrites_incident_checkpoint(vault):
    fill(vault, 12, clock0=100)
    vault.flush_index()
    vault.compact(policy=RetentionPolicy(max_age=5), now=115)
    reopened = SnapVault(vault.root, shards=4)
    # The persisted checkpoint matches the survivors: adopted as-is.
    assert reopened.metrics.index_loads == 1
    q = VaultQuery(reopened)
    assert {e.digest for i in q.incidents() for e in i.entries} == set(
        reopened.index
    )


def test_incidents_differential_after_compaction(tmp_path):
    """VaultQuery.incidents() over the compacted vault == the same
    query over an uncompacted copy, restricted to retained snaps."""
    import shutil

    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=4)
    # A mix: two 2-member incidents (one old+new, one all-old) plus
    # singletons around them.
    specs = [
        ("web", 100, {"group": "g1", "initiator": "web",
                      "initiator_reason": "crash"}),
        ("db", 200, {"group": "g1", "initiator": "web",
                     "initiator_reason": "crash"}),
        ("api", 100, {"group": "g2", "initiator": "api",
                      "initiator_reason": "assert"}),
        ("cache", 101, {"group": "g2", "initiator": "api",
                        "initiator_reason": "assert"}),
    ]
    for process, clock, detail in specs:
        snap = make_snap(machine=process, process=process, reason="group",
                         clock=clock, payload=process)
        snap.detail.update(detail)
        vault.put(snap)
    for i in range(8):
        vault.put(make_snap(process=f"solo{i}", clock=100 + 14 * i,
                            payload=f"s{i}"))
    vault.flush_index()
    copy_root = str(tmp_path / "copy")
    shutil.copytree(root, copy_root)

    plan = vault.compact(policy=RetentionPolicy(max_age=60), now=205)
    retained = {e.digest for e in plan.retained}

    def partition(v):
        return sorted(
            tuple(sorted(e.digest for e in i.entries))
            for i in VaultQuery(v).incidents()
        )

    compacted = partition(vault)
    uncompacted = SnapVault(copy_root, shards=4)
    restricted = sorted(
        members
        for members in (
            tuple(sorted(e.digest for e in i.entries
                         if e.digest in retained))
            for i in VaultQuery(uncompacted).incidents()
        )
        if members
    )
    assert compacted == restricted


def test_rebuild_index_invalidates_stale_checkpoint(vault):
    """Satellite: a kill mid-rebuild must not leave a pre-rebuild
    incidents.idx serving stale groupings next to fresh manifests."""
    fill(vault, 10, clock0=100)
    vault.flush_index()
    idx_path = os.path.join(vault.root, vault.incident_index_path())
    assert os.path.exists(idx_path)

    class Stop(Exception):
        pass

    def crash(label):
        if label == "rebuild-checkpoint-invalidated":
            raise Stop

    vault._crash_hook = crash
    with pytest.raises(Stop):
        vault.rebuild_index()
    vault._crash_hook = None
    # The checkpoint went away before any manifest was touched.
    assert not os.path.exists(idx_path)
    reopened = SnapVault(vault.root, shards=4)
    assert reopened.metrics.index_loads == 0  # rebuilt, not adopted
    assert len(reopened) == 10


def test_rebuild_index_after_compaction_matches(vault):
    digests = fill(vault, 16, clock0=100)
    vault.compact(policy=RetentionPolicy(max_age=8), now=120)
    survivors = dict(vault.index)
    recovered = vault.rebuild_index()
    assert recovered == len(survivors)
    assert set(vault.index) == set(survivors)
    assert set(digests[:len(digests) - len(survivors)]) & set(
        vault.index
    ) == set()


# ----------------------------------------------------------------------
# Concurrency: compaction racing live ingest loses nothing
# ----------------------------------------------------------------------
def test_compact_concurrent_with_ingest(tmp_path):
    vault = SnapVault(str(tmp_path / "vault"), shards=4)
    fill(vault, 30, clock0=100)
    stop = threading.Event()
    stored = []
    errors = []

    def ingest():
        i = 0
        while not stop.is_set():
            try:
                r = vault.put(make_snap(process=f"live{i}", clock=500 + i,
                                        payload=f"live{i}"))
                stored.append(r.digest)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                return
            i += 1

    threads = [threading.Thread(target=ingest) for _ in range(3)]
    for t in threads:
        t.start()
    try:
        for round_ in range(5):
            vault.compact(
                policy=RetentionPolicy(max_age=50), now=460 + round_
            )
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert not errors
    # Every concurrently-stored snap survived (all have clock >= 500,
    # far newer than any horizon used above).
    for digest in stored:
        assert digest in vault.index
    reopened = SnapVault(str(tmp_path / "vault"), shards=4)
    assert set(reopened.index) == set(vault.index)
    assert blobs_on_disk(reopened) == set(reopened.index)


# ----------------------------------------------------------------------
# CLI: tbtrace gc
# ----------------------------------------------------------------------
def run_cli(argv):
    from repro.tools.tb import main

    return main(argv)


def test_cli_gc_dry_run_then_real(tmp_path, capsys):
    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=4)
    fill(vault, 8, clock0=100)
    vault.flush_index()
    assert run_cli(["gc", "--vault", root, "--max-age", "3",
                    "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "plan: delete 4 snap(s)" in out
    assert "dry run: nothing deleted" in out
    # Dry run deleted nothing.
    assert len(SnapVault(root, shards=4)) == 8
    assert run_cli(["gc", "--vault", root, "--max-age", "3"]) == 0
    out = capsys.readouterr().out
    assert "gc: deleted 4 snap(s)" in out
    assert len(SnapVault(root, shards=4)) == 4


def test_cli_gc_json_and_refusals(tmp_path, capsys):
    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=4)
    fill(vault, 6, clock0=100)
    vault.flush_index()
    assert run_cli(["gc", "--vault", root]) == 1  # no budget
    assert "no budget" in capsys.readouterr().err
    assert run_cli(["gc", "--vault", root, "--max-age", "2", "--json",
                    "--dry-run"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["dry_run"] is True
    assert len(report["victims"]) == 3
    assert report["reclaimed_bytes"] > 0
    assert run_cli(["gc", "--vault", root, "--max-age", "2",
                    "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["dry_run"] is False
    assert len(SnapVault(root, shards=4)) == 3
