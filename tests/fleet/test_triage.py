"""Crash-signature triage: mining, buckets, exemplar pins, the top view."""

import json

import pytest

from repro.fleet import (
    RetentionPolicy,
    SnapVault,
    VaultEntry,
    VaultQuery,
    build_report,
    pairwise_scores,
    plan_compaction,
    render_report_html,
    render_report_text,
)
from repro.fleet.index import IncidentIndex
from repro.reconstruct import CrashSignature, signature_key
from repro.reconstruct.signature import normalize_reason
from tests.fleet.test_incidents import run_two_peer_fanout

WEB_SIG = "unhandled:DIVIDE_BY_ZERO @ web.main(web.c:5)"


# ----------------------------------------------------------------------
# Signature normalization
# ----------------------------------------------------------------------
def test_normalize_reason_fault_classes():
    assert normalize_reason("unhandled", {"code": 2}) == (
        "unhandled:DIVIDE_BY_ZERO"
    )
    assert normalize_reason("exception", {"code": 5}) == (
        "exception:ILLEGAL_ARGUMENT"
    )
    assert normalize_reason("unhandled", {}) == "unhandled"
    assert normalize_reason("signal", {"signum": 15}) == "signal:15"
    assert normalize_reason("signal", {}) == "signal"
    assert normalize_reason("post-mortem", {"signal": 9}) == (
        "post-mortem:signal-9"
    )
    assert normalize_reason("hang", {}) == "hang"


def test_normalize_reason_non_faults_have_no_signature():
    for reason in ("api", "external", "group", "exit", "crash"):
        assert normalize_reason(reason, {"code": 2}) is None


def test_normalize_reason_strips_addresses():
    # The pc is layout-specific; two builds of the same bug must agree.
    with_pc = normalize_reason("unhandled", {"code": 2, "pc": 0x4F2A})
    without = normalize_reason("unhandled", {"code": 2})
    assert with_pc == without


def test_normalize_reason_tolerates_non_dict_detail():
    assert normalize_reason("unhandled", None) == "unhandled"
    assert normalize_reason("signal", "garbage") == "signal"


def test_signature_render_and_key():
    sig = CrashSignature(
        reason="unhandled:DIVIDE_BY_ZERO",
        frames=(
            ("app", "boom", "app.c", 4),
            ("app", "outer", "", -1),
            ("app", "main", "", -1),
        ),
    )
    rendered = sig.render()
    assert rendered == (
        "unhandled:DIVIDE_BY_ZERO @ app.boom(app.c:4) < app.outer < app.main"
    )
    assert sig.key == signature_key(rendered)
    assert len(sig.key) == 12
    # Frameless signatures render as the bare reason class.
    assert CrashSignature(reason="hang").render() == "hang"


# ----------------------------------------------------------------------
# Ingest-time mining (the fan-out fixture: one crasher, one bystander)
# ----------------------------------------------------------------------
def test_ingest_mines_signature_for_the_crasher_only(tmp_path):
    vault, _result = run_two_peer_fanout(tmp_path)
    by_process = {e.process: e.sig for e in vault.index.values()}
    assert by_process["web"] == WEB_SIG
    assert by_process["db"] is None  # group bystander: not a fault
    assert vault.metrics.signatures_mined == 1


def test_bucket_counts_whole_incident_but_keys_on_the_fault(tmp_path):
    vault, _result = run_two_peer_fanout(tmp_path)
    buckets = VaultQuery(vault).top()
    assert len(buckets) == 1
    bucket = buckets[0]
    assert bucket.sig == WEB_SIG
    assert bucket.key == signature_key(WEB_SIG)
    assert bucket.count == 2  # web's trigger + db's bystander snap
    assert bucket.incidents == 1
    assert bucket.machines == ["back-box", "front-box"]
    assert bucket.processes == ["db", "web"]
    web = next(e for e in vault.index.values() if e.process == "web")
    assert bucket.exemplar == web.digest
    assert bucket.key in bucket.describe()
    assert vault.metrics.top_queries == 1


# ----------------------------------------------------------------------
# Incremental bucket maintenance on synthetic entries
# ----------------------------------------------------------------------
def entry(seq, machine="m", process="p", reason="api", sync_ids=(),
          group=None, initiator=None, initiator_reason=None, sig=None):
    return VaultEntry(
        digest=f"digest-{seq:04d}",
        seq=seq,
        shard=seq % 2,
        machine=machine,
        process=process,
        pid=1,
        reason=reason,
        clock=seq * 100,
        size=64,
        sync_ids=list(sync_ids),
        group=group,
        initiator=initiator,
        initiator_reason=initiator_reason,
        sig=sig,
    )


def test_singletons_with_same_sig_share_a_bucket():
    index = IncidentIndex.rebuild([
        entry(0, reason="unhandled", sig="boom"),
        entry(1, machine="m2", reason="unhandled", sig="boom"),
        entry(2, machine="m3", reason="unhandled", sig="other"),
        entry(3, reason="api"),
    ])
    assert set(index.buckets) == {"boom", "other"}
    boom = index.bucket_components("boom")
    assert len(boom) == 2  # two incidents, one bucket
    assert [c.min_seq for c in boom] == [0, 1]


def test_union_rekeys_buckets_to_the_min_signature():
    # Two sig-carrying components merged by a SYNC link: both leave
    # their old buckets, the merged component lands under min(sigs).
    index = IncidentIndex.rebuild([
        entry(0, reason="unhandled", sync_ids=[7], sig="bbb"),
        entry(1, machine="m2", reason="unhandled", sync_ids=[7], sig="aaa"),
    ])
    assert set(index.buckets) == {"aaa"}
    component = index.component_of("digest-0000")
    assert component.sig == "aaa"
    assert len(component.digests) == 2


def test_union_with_unsigned_member_keeps_the_signature():
    index = IncidentIndex.rebuild([
        entry(0, reason="unhandled", sync_ids=[7], sig="boom"),
        entry(1, machine="m2", sync_ids=[7]),  # bystander, sig None
        entry(2, machine="m3", sync_ids=[7]),
    ])
    assert set(index.buckets) == {"boom"}
    assert index.component_of("digest-0002").sig == "boom"


def test_bucket_state_is_arrival_order_free():
    entries = [
        entry(0, reason="unhandled", sync_ids=[7], sig="bbb"),
        entry(1, machine="m2", sync_ids=[7, 8]),
        entry(2, machine="m3", reason="unhandled", sync_ids=[8], sig="aaa"),
        entry(3, machine="m4", reason="unhandled", sig="aaa"),
    ]
    forward = IncidentIndex.rebuild(entries)
    # rebuild() re-sorts by seq, so feed a scrambled list through add()
    # directly to simulate a different union interleaving.
    scrambled = IncidentIndex()
    for e in (entries[3], entries[2], entries[0], entries[1]):
        scrambled.add(e)
    assert forward.to_bytes() == scrambled.to_bytes()
    assert forward.exemplar_digests() == scrambled.exemplar_digests()


def test_exemplar_is_earliest_signature_carrier():
    index = IncidentIndex.rebuild([
        entry(0, sync_ids=[7]),  # earliest member, but unsigned
        entry(1, machine="m2", reason="unhandled", sync_ids=[7], sig="boom"),
        entry(2, machine="m3", reason="unhandled", sig="boom"),
    ])
    # digest-0001 is the earliest member whose own sig matches.
    assert index.exemplar_digest("boom") == "digest-0001"
    assert index.exemplar_digests() == {"digest-0001"}
    assert index.exemplar_digest("missing") is None


# ----------------------------------------------------------------------
# Checkpoint round-trip
# ----------------------------------------------------------------------
def test_checkpoint_carries_bucket_state(tmp_path):
    entries = [
        entry(0, reason="unhandled", sig="boom"),
        entry(1, machine="m2", reason="unhandled", sync_ids=[7], sig="boom"),
        entry(2, machine="m3", sync_ids=[7]),
    ]
    index = IncidentIndex.rebuild(entries)
    index.persist(str(tmp_path))
    doc = json.loads(index.to_bytes())
    assert doc["buckets"] == {"boom": 3}  # bystander counted in
    loaded, how = IncidentIndex.load(str(tmp_path), entries)
    assert how == "loaded"
    assert loaded.buckets == index.buckets
    assert loaded.sig == index.sig
    assert loaded.to_bytes() == index.to_bytes()
    assert loaded.exemplar_digest("boom") == "digest-0000"


def test_stale_sig_in_checkpoint_forces_rebuild(tmp_path):
    stale = [entry(0, reason="unhandled", sig="old-sig")]
    IncidentIndex.rebuild(stale).persist(str(tmp_path))
    # The manifests were re-mined (say, mapfiles changed): the
    # checkpoint's member sig disagrees, so the manifests win.
    fresh = [entry(0, reason="unhandled", sig="new-sig")]
    loaded, how = IncidentIndex.load(str(tmp_path), fresh)
    assert how == "rebuilt"
    assert set(loaded.buckets) == {"new-sig"}


# ----------------------------------------------------------------------
# GC: open buckets pin their exemplar
# ----------------------------------------------------------------------
def test_bucket_exemplar_pin_survives_expiry():
    entries = [
        entry(0, reason="unhandled", sig="boom"),  # old: the exemplar
        entry(1, machine="m2", reason="unhandled", sig="boom"),  # old
        entry(30, process="fresh"),
    ]
    index = IncidentIndex.rebuild(entries)
    policy = RetentionPolicy(max_age=500, pin_open_incidents=False)
    plan = plan_compaction(entries, policy, incident_index=index, now=3000)
    assert "digest-0000" in plan.pinned  # the exemplar, kept by the pin
    assert plan.victim_digests == {"digest-0001"}  # its twin expires


def test_bucket_exemplar_pin_can_be_disabled():
    entries = [
        entry(0, reason="unhandled", sig="boom"),
        entry(30, process="fresh"),
    ]
    index = IncidentIndex.rebuild(entries)
    policy = RetentionPolicy(
        max_age=500, pin_open_incidents=False, pin_bucket_exemplars=False
    )
    plan = plan_compaction(entries, policy, incident_index=index, now=3000)
    assert plan.victim_digests == {"digest-0000"}


def test_exemplar_pin_opens_the_whole_incident():
    # The pin applies before the open-incident rule, so the exemplar's
    # bystanders ride along — GC still never splits an incident.
    entries = [
        entry(0, reason="unhandled", sync_ids=[7], sig="boom"),
        entry(1, machine="m2", sync_ids=[7]),  # bystander, also old
        entry(30, process="fresh"),
    ]
    index = IncidentIndex.rebuild(entries)
    plan = plan_compaction(
        entries, RetentionPolicy(max_age=500), incident_index=index,
        now=3000,
    )
    assert plan.victims == []
    assert set(plan.pinned) == {"digest-0000", "digest-0001"}


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_report_document_and_renderings(tmp_path):
    vault, _result = run_two_peer_fanout(tmp_path)
    query = VaultQuery(vault)
    report = build_report(query)
    assert report["schema"] == "tb-triage-report/1"
    assert report["snaps"] == 2 and report["bucketed_snaps"] == 1
    assert len(report["buckets"]) == 1
    doc = report["buckets"][0]
    assert doc["sig"] == WEB_SIG
    trace_rows = doc["exemplar_trace"]
    assert trace_rows[0].startswith("exemplar ")
    assert any("fault here" in row for row in trace_rows)
    assert vault.metrics.reports_rendered == 1

    text = "\n".join(render_report_text(report))
    assert "top crashers: 1 bucket(s), 1/2 snap(s) bucketed" in text
    assert WEB_SIG in text

    page = render_report_html(report)
    assert page.startswith("<!DOCTYPE html>")
    assert page.count('<div class="bucket">') == page.count("</div>") == 1
    assert "&lt;=== fault here" in page  # trace rows are escaped
    assert WEB_SIG.replace("<", "&lt;") in page


def test_exemplar_lines_clip_keeps_the_tail(tmp_path):
    vault, _result = run_two_peer_fanout(tmp_path)
    report = build_report(VaultQuery(vault), exemplar_lines=4)
    rows = report["buckets"][0]["exemplar_trace"]
    assert any("clipped" in row for row in rows)
    assert any("fault here" in row for row in rows)  # tail survives


# ----------------------------------------------------------------------
# The triage-quality metric
# ----------------------------------------------------------------------
def test_pairwise_scores_perfect_clustering():
    truth = {"a": {1, 2, 3}, "b": {4, 5}}
    assert pairwise_scores({"x": {1, 2, 3}, "y": {4, 5}}, truth) == (1.0, 1.0)


def test_pairwise_scores_merge_costs_precision():
    truth = {"a": {1, 2}, "b": {3, 4}}
    merged = {"x": {1, 2, 3, 4}}  # 6 pairs, only 2 true
    precision, recall = pairwise_scores(merged, truth)
    assert precision == pytest.approx(2 / 6)
    assert recall == 1.0


def test_pairwise_scores_scatter_costs_recall():
    truth = {"a": {1, 2, 3}}
    scattered = {"x": {1, 2}, "y": {3}}
    precision, recall = pairwise_scores(scattered, truth)
    assert precision == 1.0
    assert recall == pytest.approx(1 / 3)


def test_pairwise_scores_unclustered_items_cost_recall_only():
    truth = {"a": {1, 2}}
    precision, recall = pairwise_scores({}, truth)
    assert (precision, recall) == (1.0, 0.0)
    # And no pairs anywhere is vacuously perfect.
    assert pairwise_scores({}, {"a": {1}}) == (1.0, 1.0)
