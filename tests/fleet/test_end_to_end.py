"""Vault end-to-end: chaos run, machine loss, CLI, damaged blobs."""

import pytest

from repro.chaos import build_vault_run, run_scenario
from repro.fleet import SnapVault, VaultQuery
from repro.reconstruct import render_distributed
from repro.runtime import ArchiveError
from repro.tools.tb import main
from tests.fleet.test_store import make_snap


@pytest.fixture(scope="module")
def demo_vault(tmp_path_factory):
    """One finished three-machine incident run, drained into a vault."""
    root = str(tmp_path_factory.mktemp("demo") / "vault")
    vault, collector, session = build_vault_run(vault_root=root)
    session.network.run()
    collector.drain()
    return root


# ----------------------------------------------------------------------
# The acceptance scenario: kill -9 a machine AFTER its snaps uploaded
# ----------------------------------------------------------------------
def test_vault_survives_machine_loss():
    result = run_scenario("vault-machine-loss", seed=0)
    assert result.vault_dir is not None
    # The frontend machine is dead, but its group snap was uploaded
    # first — the vault is the only remaining evidence, and has it.
    vault = SnapVault(result.vault_dir)
    frontend = vault.select(machine="machine-b")
    assert frontend, "killed machine's pre-uploaded snaps must survive"
    assert {e.machine for e in vault.select()} == {
        "machine-a", "machine-b", "machine-c"
    }
    # Chaos dropped uploads in transit; retries redelivered every one.
    assert any("chaos-dropped" in line for line in result.injected)
    trace = result.reconstruct(strict=False)
    text = render_distributed(trace)
    for machine in ("machine-a", "machine-b", "machine-c"):
        assert machine in text


def test_vault_run_is_one_incident(demo_vault):
    vault = SnapVault(demo_vault)  # fresh open: manifests reload
    assert len(vault) == 3  # client trigger + frontend/backend fan-out
    incidents = VaultQuery(vault).incidents()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.machines == ["machine-a", "machine-b", "machine-c"]
    assert incident.initiator() == "client"
    assert incident.links == {"group-snap", "sync-link"}


def test_reconstruct_incident_from_vault_alone(demo_vault):
    # Everything needed travels with the vault (blobs + mapfiles).
    query = VaultQuery(SnapVault(demo_vault))
    incident = query.incidents()[0]
    trace = query.reconstruct_incident(incident)
    text = render_distributed(trace)
    for machine in ("machine-a", "machine-b", "machine-c"):
        assert machine in text


# ----------------------------------------------------------------------
# Damaged stored blobs: strict fails loudly, salvage names the loss
# ----------------------------------------------------------------------
def test_damaged_blob_strict_vs_salvage(tmp_path):
    vault = SnapVault(str(tmp_path / "v"))
    digest = vault.put(make_snap()).digest
    path = vault.blob_path(digest)
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(data[: len(data) // 2])  # torn on disk
    with pytest.raises(ArchiveError):
        vault.load(digest)
    snap, notes = vault.load(digest, salvage=True)
    assert notes  # the damage is named, never hidden
    if snap is None:
        with pytest.raises(ValueError, match="unrecoverable"):
            VaultQuery(vault).reconstruct_entry(digest, salvage=True)


# ----------------------------------------------------------------------
# The CLI: collect / query / incidents / info
# ----------------------------------------------------------------------
def test_cli_collect_kills_machine_after_upload(tmp_path, capsys):
    root = str(tmp_path / "vault")
    rc = main([
        "collect", "--vault", root, "--seed", "1", "--drop-rate", "0.25",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "killed machine-b mid-run" in out
    assert "snap(s) stored" in out
    assert "dedupe" in out  # metrics render rides along
    assert len(SnapVault(root)) >= 3


def test_cli_collect_rejects_unknown_machine(tmp_path, capsys):
    rc = main([
        "collect", "--vault", str(tmp_path / "v"),
        "--kill-machine", "no-such-box",
    ])
    assert rc == 1
    assert "no machine named" in capsys.readouterr().err


def test_cli_query_filters(demo_vault, capsys):
    assert main(["query", "--vault", demo_vault]) == 0
    out = capsys.readouterr().out
    assert "3 snap(s) match" in out

    assert main([
        "query", "--vault", demo_vault, "--machine", "machine-a",
    ]) == 0
    out = capsys.readouterr().out
    assert "1 snap(s) match" in out
    assert "machine-a/client" in out
    assert "machine-b" not in out


def test_cli_query_show_reconstructs_one(demo_vault, capsys):
    entry = SnapVault(demo_vault).select(machine="machine-a")[0]
    rc = main([
        "query", "--vault", demo_vault, "--show", entry.digest[:10],
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"snap: {entry.reason} in client on machine-a" in out

    rc = main(["query", "--vault", demo_vault, "--show", "zzzz"])
    assert rc == 1
    assert "no stored snap matches" in capsys.readouterr().err


def test_cli_incidents_groups_and_reconstructs(demo_vault, capsys):
    rc = main(["incidents", "--vault", demo_vault])
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 incident(s)" in out
    assert "incident #0:" in out
    assert "initiator client" in out
    for machine in ("machine-a", "machine-b", "machine-c"):
        assert machine in out


def test_cli_incidents_list_only(demo_vault, capsys):
    rc = main(["incidents", "--vault", demo_vault, "--list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "incident #0:" in out
    assert "thread" not in out  # no reconstruction output


def test_cli_query_json_lines(demo_vault, capsys):
    import json

    assert main(["query", "--vault", demo_vault, "--json"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    rows = [json.loads(line) for line in lines]
    assert {row["machine"] for row in rows} == {
        "machine-a", "machine-b", "machine-c"
    }
    assert all("digest" in row and "seq" in row for row in rows)

    assert main([
        "query", "--vault", demo_vault, "--machine", "machine-a", "--json",
    ]) == 0
    rows = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert [row["machine"] for row in rows] == ["machine-a"]


def test_cli_incidents_json_lines(demo_vault, capsys):
    import json

    assert main(["incidents", "--vault", demo_vault, "--json"]) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert len(lines) == 1  # one incident, one JSON line, no prose
    incident = json.loads(lines[0])
    assert incident["snaps"] == 3
    assert incident["machines"] == ["machine-a", "machine-b", "machine-c"]
    assert len(incident["entries"]) == 3
    assert "group-snap" in incident["links"]


def test_session_multi_collector_round_robin(tmp_path):
    from repro.chaos import build_vault_run

    root = str(tmp_path / "vault")
    vault, collector, session = build_vault_run(
        vault_root=root, collector_options={"collectors": 2}
    )
    assert len(session.collectors) == 2
    assert collector is session.collectors[0]
    session.network.run()
    for c in session.collectors:
        c.drain()
    assert {e.machine for e in vault.select()} == {
        "machine-a", "machine-b", "machine-c"
    }
    # Both collectors actually carried traffic.
    assert sum(bool(c.results) for c in session.collectors) == 2
    assert len(VaultQuery(vault).incidents()) == 1


def test_cli_info_reports_stored_archive(demo_vault, capsys):
    vault = SnapVault(demo_vault)
    path = vault.blob_path(vault.select()[0].digest)
    rc = main(["info", path])
    out = capsys.readouterr().out
    assert rc == 0
    assert "TBSZ" in out
    assert "CRC ok" in out
    assert "snap:" in out


def test_cli_info_flags_damage(tmp_path, capsys):
    vault = SnapVault(str(tmp_path / "v"))
    digest = vault.put(make_snap()).digest
    path = vault.blob_path(digest)
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(data[:-4])  # lop off the tail
    rc = main(["info", path])
    out = capsys.readouterr().out
    assert rc == 1
    assert "problem" in out
