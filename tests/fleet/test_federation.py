"""Federated scatter-gather over regional vaults.

The acceptance bar: with zero chaos a federated answer is bit-identical
(in canonical, vault-free form) to the same query against one merged
vault; under chaos the answer degrades to a named partial result —
``FederationReport`` lists each vault that timed out, failed, or
truncated — and never raises or hangs.  A vault served by a *wedged*
host machine (deadlocked guest, or a runaway loop that blew the cycle
budget) must surface as a timed-out vault, for both ``"stalled"`` and
``"limit"`` ``Network.run()`` endings.
"""

import json

import pytest

from repro.chaos.scenarios import (
    FEDERATION_VICTIM,
    build_federated_fleet,
    serve_federation,
)
from repro.distributed.network import Network
from repro.distributed.session import DistributedSession
from repro.fleet import (
    FederatedQuery,
    SnapVault,
    VaultQuery,
    canonical_buckets,
    canonical_entries,
    canonical_incidents,
)
from repro.fleet.federation import (
    COVERAGE_DEGRADED,
    COVERAGE_FULL,
    COVERAGE_PARTIAL,
)
from repro.fleet.remote import RemoteVaultClient, VaultService


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    base = tmp_path_factory.mktemp("federation")
    roots = {
        "vault-east": str(base / "east"),
        "vault-west": str(base / "west"),
    }
    vaults, session = build_federated_fleet(roots)
    # The merged ground truth: every region's snaps in one store.
    merged = SnapVault(str(base / "merged"), shards=4)
    for mapfile in session.mapfiles:
        merged.put_mapfile(mapfile)
    for vault in vaults.values():
        for entry in vault.select():
            snap, _ = vault.load(entry.digest)
            merged.put(snap)
    return roots, str(base / "merged"), session.mapfiles


def open_fleet(roots):
    return {name: SnapVault(root) for name, root in roots.items()}


def canon(docs) -> str:
    return json.dumps(docs, sort_keys=True)


# ----------------------------------------------------------------------
# Zero chaos: bit-identical to one merged vault
# ----------------------------------------------------------------------
def test_healthy_federation_is_full_coverage(fleet):
    roots, _, _ = fleet
    federated, _ = serve_federation(open_fleet(roots), Network())
    _, report = federated.select()
    assert report.coverage == COVERAGE_FULL
    assert report.degraded_vaults() == []
    assert {v.name for v in report.vaults} == set(roots)


def test_federated_select_bit_identical_to_merged_vault(fleet):
    roots, merged_root, _ = fleet
    federated, _ = serve_federation(open_fleet(roots), Network())
    entries, _ = federated.select()
    local = VaultQuery(SnapVault(merged_root))
    assert canon(canonical_entries(entries)) == canon(
        canonical_entries(local.select())
    )


def test_federated_incidents_bit_identical_to_merged_vault(fleet):
    roots, merged_root, _ = fleet
    federated, _ = serve_federation(open_fleet(roots), Network())
    incidents, _ = federated.incidents()
    local = VaultQuery(SnapVault(merged_root))
    assert canon(canonical_incidents(incidents)) == canon(
        canonical_incidents(local.incidents())
    )
    # The incident genuinely spans both vaults (SYNC + group links).
    assert any(len(i.machines) == 3 for i in incidents)


def test_federated_top_bit_identical_to_merged_vault(fleet):
    roots, merged_root, _ = fleet
    federated, _ = serve_federation(open_fleet(roots), Network())
    buckets, _ = federated.top()
    local = VaultQuery(SnapVault(merged_root))
    assert canon(canonical_buckets(buckets)) == canon(
        canonical_buckets(local.top())
    )
    assert buckets, "the crash must bucket"


def test_federated_filters_keep_per_vault_semantics(fleet):
    roots, merged_root, _ = fleet
    federated, _ = serve_federation(open_fleet(roots), Network())
    entries, report = federated.select(machine="machine-c")
    assert report.coverage == COVERAGE_FULL
    local = VaultQuery(SnapVault(merged_root))
    assert canon(canonical_entries(entries)) == canon(
        canonical_entries(local.select(machine="machine-c"))
    )


# ----------------------------------------------------------------------
# Degradation: losses become named statuses, not exceptions
# ----------------------------------------------------------------------
def test_lost_vault_degrades_to_named_partial(fleet):
    roots, _, _ = fleet
    network = Network()
    federated, _ = serve_federation(open_fleet(roots), network)
    network.query_chaos = (
        lambda s, o, a: "kill-server" if s == FEDERATION_VICTIM else None
    )
    entries, report = federated.select()
    assert report.coverage == COVERAGE_PARTIAL
    assert report.degraded_vaults() == [FEDERATION_VICTIM]
    (lost,) = [v for v in report.vaults if v.name == FEDERATION_VICTIM]
    assert lost.status in ("timeout", "unavailable")
    # The survivors' entries are a correct subset of the full answer.
    healthy_fed, _ = serve_federation(open_fleet(roots), Network())
    full, _ = healthy_fed.select()
    assert {e.digest for e in entries} <= {e.digest for e in full}
    assert entries, "the reachable vault still answered"


def test_slow_vault_times_out_and_is_named(fleet):
    roots, _, _ = fleet
    network = Network()
    federated, clients = serve_federation(open_fleet(roots), network)
    network.query_chaos = (
        lambda s, o, a: "delay" if s == FEDERATION_VICTIM else None
    )
    _, report = federated.top()
    assert report.coverage == COVERAGE_PARTIAL
    statuses = {v.name: v.status for v in report.vaults}
    assert statuses[FEDERATION_VICTIM] == "timeout"
    assert federated.metrics.federated_vault_losses >= 1


def test_every_vault_down_is_degraded_not_an_error(fleet):
    roots, _, _ = fleet
    network = Network()
    federated, _ = serve_federation(open_fleet(roots), network)
    network.query_chaos = lambda s, o, a: "kill-server"
    entries, report = federated.select()
    assert entries == []
    assert report.coverage == COVERAGE_DEGRADED
    assert set(report.degraded_vaults()) == set(roots)


def test_truncated_vault_is_partial_with_page_detail(fleet):
    roots, _, _ = fleet
    network = Network()
    clients = {}
    for name, vault in open_fleet(roots).items():
        network.register_vault_service(
            VaultService(vault, name=name, page_limit=1)
        )
        clients[name] = RemoteVaultClient(network, service=name)
    # Budget 0: each vault returns its first page then reports
    # truncation (the coverage ladder's "returned truncated pages").
    federated = FederatedQuery(clients, timeout=0)
    entries, report = federated.select()
    assert report.coverage == COVERAGE_PARTIAL
    truncated = [v for v in report.vaults if v.status == "truncated"]
    assert truncated and all(
        "budget exhausted" in v.detail for v in truncated
    )
    assert entries  # the first pages still merged


# ----------------------------------------------------------------------
# Satellite: a wedged vault host surfaces as a timed-out vault,
# for both "stalled" and "limit" network endings
# ----------------------------------------------------------------------
DEADLOCK_SRC = """
int transfer(int arg) {
    lock(1);
    sleep(2000);
    lock(2);
    unlock(2);
    unlock(1);
    exit_thread(0);
    return 0;
}

int main() {
    thread_create(transfer, 1);
    lock(2);
    sleep(2000);
    lock(1);
    unlock(1);
    unlock(2);
    return 0;
}
"""

SPIN_SRC = """
int main() {
    while (1) { }
    return 0;
}
"""


def wedged_host(source: str, max_total_cycles: int) -> tuple[str, object]:
    """Run ``source`` on a one-machine network; return (ending, machine)."""
    session = DistributedSession()
    machine = session.add_machine("vault-host")
    session.add_process(machine, "vault-daemon", source, start=True)
    result = session.run(max_total_cycles=max_total_cycles)
    return result.status, machine


@pytest.mark.parametrize(
    "source,max_cycles,ending",
    [
        (DEADLOCK_SRC, 100_000_000, "stalled"),
        (SPIN_SRC, 30_000, "limit"),
    ],
)
def test_wedged_vault_host_reported_as_timed_out(
    fleet, source, max_cycles, ending
):
    roots, _, _ = fleet
    status, machine = wedged_host(source, max_cycles)
    assert status == ending
    assert machine._live_threads(), "the host must still have live threads"

    network = Network()
    vaults = open_fleet(roots)
    clients = {}
    for name, vault in vaults.items():
        host = machine if name == FEDERATION_VICTIM else None
        network.register_vault_service(
            VaultService(vault, name=name, machine=host)
        )
        clients[name] = RemoteVaultClient(
            network, service=name, max_retries=1
        )
    federated = FederatedQuery(clients)
    incidents, report = federated.incidents()
    assert report.coverage == COVERAGE_PARTIAL
    statuses = {v.name: v.status for v in report.vaults}
    assert statuses[FEDERATION_VICTIM] == "timeout"
    assert statuses["vault-east"] == "ok"
    (lost,) = [v for v in report.vaults if v.name == FEDERATION_VICTIM]
    assert "unresponsive" in lost.detail
    # The reachable region's incident evidence still merged.
    assert incidents


def test_healthy_completed_host_is_not_wedged(fleet):
    """The converse: a machine whose run ended "done" serves fine."""
    roots, _, _ = fleet
    session = DistributedSession()
    machine = session.add_machine("vault-host")
    session.add_process(
        machine, "vault-daemon", "int main() { return 0; }", start=True
    )
    assert session.run().status == "done"
    network = Network()
    vaults = open_fleet(roots)
    server = VaultService(
        vaults["vault-east"], name="vault-east", machine=machine
    )
    assert not server.wedged()
    network.register_vault_service(server)
    client = RemoteVaultClient(network, service="vault-east")
    assert client.hello()["snaps"] == len(vaults["vault-east"])
