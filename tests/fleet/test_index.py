"""The persisted incident index: incremental == batch, bit-identical rebuild.

The index is only trustworthy if two properties hold everywhere:

* **equivalence** — feeding entries to :meth:`IncidentIndex.add` in
  ingest order produces exactly the partition (and link kinds) the
  original one-shot :func:`batch_group` computes;
* **canonical persistence** — ``incidents.idx`` is a pure function of
  the partition, so rebuilding from the manifests alone reproduces the
  checkpoint byte for byte, and a torn / stale / mismatched checkpoint
  degrades to a rebuild, never to wrong answers.
"""

import json
import random

import pytest

from repro.fleet import IncidentIndex, SnapVault, VaultEntry, VaultQuery
from repro.fleet.index import INDEX_FILE, batch_group


def entry(seq, machine="m", process="p", reason="api", sync_ids=(),
          group=None, initiator=None, initiator_reason=None):
    return VaultEntry(
        digest=f"digest-{seq:04d}",
        seq=seq,
        shard=0,
        machine=machine,
        process=process,
        pid=1,
        reason=reason,
        clock=seq * 100,
        size=64,
        sync_ids=list(sync_ids),
        group=group,
        initiator=initiator,
        initiator_reason=initiator_reason,
    )


def random_entries(seed: int, count: int = 120) -> list[VaultEntry]:
    """A seeded stream mixing fan-outs, initiator matches, and SYNC ids."""
    rng = random.Random(seed)
    machines = [f"m{i}" for i in range(4)]
    processes = ["web", "db", "cache", "auth"]
    reasons = ["api", "hang", "unhandled"]
    entries = []
    for seq in range(count):
        kind = rng.random()
        if kind < 0.25:
            fanout = rng.randrange(count // 6 + 1)
            entries.append(entry(
                seq,
                machine=rng.choice(machines),
                process=rng.choice(processes),
                reason="group",
                group=f"outage-{fanout}",
                initiator=rng.choice(processes),
                initiator_reason=rng.choice(reasons),
                sync_ids=[rng.randrange(12)] if rng.random() < 0.3 else [],
            ))
        else:
            entries.append(entry(
                seq,
                machine=rng.choice(machines),
                process=rng.choice(processes),
                reason=rng.choice(reasons),
                sync_ids=sorted(
                    rng.sample(range(12), rng.randrange(3))
                ),
            ))
    return entries


def partition_of_batch(entries, window):
    clusters, kinds = batch_group(entries, window)
    return {
        frozenset(entries[m].digest for m in members): kinds[pos]
        for pos, members in enumerate(clusters)
    }


def partition_of_index(index):
    return {
        frozenset(c.digests): c.kinds for c in index.components()
    }


# ----------------------------------------------------------------------
# Differential: incremental add == one-shot batch_group
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("window", [None, 10, 40])
def test_incremental_matches_batch(seed, window):
    entries = random_entries(seed)
    index = IncidentIndex(window=window)
    for e in entries:
        index.add(e)
    assert partition_of_index(index) == partition_of_batch(entries, window)


def test_add_is_idempotent_per_digest():
    entries = random_entries(99)
    index = IncidentIndex()
    for e in entries:
        index.add(e)
        index.add(e)  # duplicate delivery must not double-link
    assert partition_of_index(index) == partition_of_batch(entries, None)


def test_window_bounds_incremental_edges():
    entries = [
        entry(0, sync_ids=[7]),
        entry(1, sync_ids=[7]),
        entry(50, sync_ids=[7]),
        entry(51, sync_ids=[7]),
    ]
    index = IncidentIndex(window=5)
    for e in entries:
        index.add(e)
    parts = sorted(sorted(c.digests) for c in index.components())
    assert parts == [
        ["digest-0000", "digest-0001"],
        ["digest-0050", "digest-0051"],
    ]


# ----------------------------------------------------------------------
# Canonical persistence
# ----------------------------------------------------------------------
def test_rebuild_is_bit_identical():
    entries = random_entries(3)
    incremental = IncidentIndex()
    for e in entries:
        incremental.add(e)
    rebuilt = IncidentIndex.rebuild(entries)
    assert rebuilt.to_bytes() == incremental.to_bytes()
    # Shuffled manifest order must not matter: rebuild sorts by seq.
    shuffled = list(entries)
    random.Random(1).shuffle(shuffled)
    assert IncidentIndex.rebuild(shuffled).to_bytes() == incremental.to_bytes()


def test_vault_checkpoint_reload_and_rebuild_identical(tmp_path, make_vault_snaps):
    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=2)
    for snap in make_vault_snaps(20):
        vault.put(snap)
    path = vault.flush_index()
    first = open(path, "rb").read()

    reopened = SnapVault(root, shards=2)
    assert reopened.metrics.index_loads == 1
    assert reopened.incident_index.to_bytes() == first

    (tmp_path / "vault" / INDEX_FILE).unlink()
    rebuilt = SnapVault(root, shards=2)
    assert rebuilt.incident_index.to_bytes() == first


@pytest.fixture
def make_vault_snaps():
    from tests.fleet.test_store import make_snap

    def make(count):
        snaps = []
        for i in range(count):
            if i % 5 == 1:
                snaps.append(make_snap(
                    machine=f"m{i % 3}", process="db", reason="group",
                    payload=i,
                ))
                snaps[-1].detail = {
                    "group": f"g{i // 5}", "initiator": "web",
                    "initiator_reason": "unhandled",
                }
            else:
                snaps.append(make_snap(
                    machine=f"m{i % 3}",
                    process=["web", "db"][i % 2],
                    reason=["api", "unhandled"][i % 2],
                    payload=i,
                ))
        return snaps

    return make


def test_torn_checkpoint_rebuilds(tmp_path, make_vault_snaps):
    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=2)
    for snap in make_vault_snaps(12):
        vault.put(snap)
    path = vault.flush_index()
    good = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(good[: len(good) // 2])  # torn mid-write
    reopened = SnapVault(root, shards=2)
    assert reopened.incident_index.to_bytes() == good
    assert reopened.metrics.index_loads == 0  # it was a rebuild

    reopened.flush_index()  # checkpoint the rebuilt state
    how = IncidentIndex.load(root, list(reopened.index.values()))[1]
    assert how == "loaded"


def test_stale_checkpoint_catches_up(tmp_path, make_vault_snaps):
    root = str(tmp_path / "vault")
    snaps = make_vault_snaps(16)
    vault = SnapVault(root, shards=2)
    for snap in snaps[:10]:
        vault.put(snap)
    vault.flush_index()
    for snap in snaps[10:]:
        vault.put(snap)
    # Vault dies here without flushing: checkpoint covers 10 of 16.
    entries = sorted(vault.index.values(), key=lambda e: e.seq)
    index, how = IncidentIndex.load(root, entries)
    assert how == "caught-up"
    assert index.to_bytes() == IncidentIndex.rebuild(entries).to_bytes()

    reopened = SnapVault(root, shards=2)
    assert reopened.metrics.index_catchups == 6  # entries replayed
    assert len(reopened.incident_index) == 16


def test_window_mismatch_rebuilds(tmp_path, make_vault_snaps):
    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=2)
    for snap in make_vault_snaps(8):
        vault.put(snap)
    vault.flush_index()
    entries = sorted(vault.index.values(), key=lambda e: e.seq)
    index, how = IncidentIndex.load(root, entries, window=10)
    assert how == "rebuilt"
    assert index.window == 10


def test_checkpoint_disagreeing_with_manifests_rebuilds(tmp_path, make_vault_snaps):
    root = str(tmp_path / "vault")
    vault = SnapVault(root, shards=2)
    for snap in make_vault_snaps(8):
        vault.put(snap)
    path = vault.flush_index()
    doc = json.loads(open(path, "rb").read())
    doc["components"][0]["members"][0][0] += 1000  # seq mismatch
    with open(path, "w") as fh:
        json.dump(doc, fh)
    _index, how = IncidentIndex.load(
        root, sorted(vault.index.values(), key=lambda e: e.seq)
    )
    assert how == "rebuilt"


# ----------------------------------------------------------------------
# Indexed queries
# ----------------------------------------------------------------------
def test_incident_of_matches_full_listing(tmp_path, make_vault_snaps):
    vault = SnapVault(str(tmp_path / "vault"), shards=2)
    for snap in make_vault_snaps(20):
        vault.put(snap)
    query = VaultQuery(vault)
    listing = query.incidents()
    for incident in listing:
        for e in incident.entries:
            found = query.incident_of(e.digest)
            assert {x.digest for x in found.entries} == {
                x.digest for x in incident.entries
            }
            assert found.links == incident.links
            assert found.incident_id == min(x.seq for x in incident.entries)
    assert query.incident_of("no-such-digest") is None


def test_indexed_filters_match_batch_filters(tmp_path, make_vault_snaps):
    vault = SnapVault(str(tmp_path / "vault"), shards=2)
    for snap in make_vault_snaps(24):
        vault.put(snap)
    query = VaultQuery(vault)

    def normalize(incidents):
        return sorted(
            frozenset(e.digest for e in i.entries) for i in incidents
        )

    for filters in (
        {"machine": "m1"},
        {"process": "web"},
        {"reason": "unhandled"},
        {"group": "g1"},
        {"machine": "m0", "reason": "api"},
    ):
        indexed = query.incidents(**filters)
        # The fallback path groups only the filtered entries, so to
        # compare apples to apples: every indexed incident must touch a
        # matching entry, and every batch-side matching entry must be
        # in some indexed incident.
        batch_entries = [
            e
            for e in vault.select()
            if all(
                getattr(e, k) == v
                for k, v in filters.items()
            )
        ]
        covered = {e.digest for i in indexed for e in i.entries}
        assert {e.digest for e in batch_entries} <= covered
        for incident in indexed:
            assert any(
                all(getattr(e, k) == v for k, v in filters.items())
                for e in incident.entries
            )


def test_explicit_window_bypasses_index(tmp_path, make_vault_snaps):
    vault = SnapVault(str(tmp_path / "vault"), shards=2, link_window=None)
    for snap in make_vault_snaps(20):
        vault.put(snap)
    query = VaultQuery(vault)
    # window=2 differs from the index's window → batch path; its result
    # must match a from-scratch batch grouping.
    narrow = query.incidents(window=2)
    entries = vault.select()
    clusters, _ = batch_group(entries, 2)
    assert sorted(len(c) for c in clusters) == sorted(
        len(i.entries) for i in narrow
    )
