"""Disassembler: formatting and the assemble/disassemble round trip."""

from hypothesis import given, settings

from repro.isa import Instr, Op, assemble, disassemble, encode, format_instr
from tests.isa.test_encoding import _instr_strategy


def test_format_basic_shapes():
    assert format_instr(Instr(Op.ADD, rd=1, rs=2, rt=3)) == "add r1, r2, r3"
    assert format_instr(Instr(Op.MOVI, rd=0, imm=-5)) == "movi r0, -5"
    assert format_instr(Instr(Op.RET)) == "ret"
    assert format_instr(Instr(Op.PUSH, rd=12)) == "push sp"
    assert format_instr(Instr(Op.SYS, imm=14)) == "sys 14"


@settings(max_examples=300, deadline=None)
@given(_instr_strategy())
def test_format_then_assemble_round_trips(instr):
    """Property: the disassembler's text re-assembles to the same word.

    Branch immediates are offsets in text form, so wrap the instruction
    as the sole content of a function and compare encodings directly.
    """
    text = format_instr(instr)
    module = assemble(f".func f\n  {text}\n.endfunc")
    assert module.code == [encode(instr)]


def test_disassemble_module_lines():
    module = assemble(
        """
        .func main
          movi r0, 7
          halt
        .endfunc
        """
    )
    lines = disassemble(module)
    assert lines[0].strip().endswith("movi r0, 7")
    assert lines[1].strip().endswith("halt")


def test_disassemble_range():
    module = assemble(".func f\n nop\n nop\n halt\n.endfunc")
    assert len(disassemble(module, start=1, end=3)) == 2


def test_disassemble_tolerates_garbage_words():
    from repro.isa.module import Module

    module = Module(name="m", code=[0xFF000000])
    (line,) = disassemble(module)
    assert ".word 0xff000000" in line
