"""Module metadata: checksums, debug queries, serialization."""

from repro.isa import assemble
from repro.isa.module import Module

SRC = """
.module demo
.entry main
.func main
.line demo.c 1
  li r0, 3
.line demo.c 2
  halt
.endfunc
.data
g: .word 42
"""


def test_checksum_stable_across_assemblies():
    assert assemble(SRC).checksum() == assemble(SRC).checksum()


def test_checksum_ignores_timestamp():
    a = assemble(SRC)
    b = assemble(SRC)
    b.timestamp = 999
    assert a.checksum() == b.checksum()


def test_checksum_changes_with_code():
    changed = SRC.replace("li r0, 3", "li r0, 4")
    assert assemble(SRC).checksum() != assemble(changed).checksum()


def test_checksum_changes_with_data():
    changed = SRC.replace(".word 42", ".word 43")
    assert assemble(SRC).checksum() != assemble(changed).checksum()


def test_func_at_boundaries():
    module = assemble(SRC)
    func = module.func_named("main")
    assert module.func_at(func.start) is func
    assert module.func_at(func.end) is None


def test_line_at_before_first_entry_is_none():
    module = Module(name="m", lines=[])
    assert module.line_at(0) is None


def test_serialization_round_trip():
    module = assemble(SRC)
    module.dag_base = 100
    module.dag_count = 7
    module.dag_fixups = [1, 5]
    module.instrumented = True
    clone = Module.from_dict(module.to_dict())
    assert clone.checksum() == module.checksum()
    assert clone.dag_base == 100
    assert clone.dag_count == 7
    assert clone.dag_fixups == [1, 5]
    assert clone.instrumented
    assert clone.entry_offset() == module.entry_offset()
    assert clone.symbols == module.symbols


def test_entry_offset_falls_back_to_main():
    module = assemble(".export main\n.func main\n halt\n.endfunc")
    assert module.entry_offset() == 0
