"""Encoder/decoder round-trip and range checking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import EncodingError, Fmt, Instr, Op, decode, encode
from repro.isa.encoding import UNSIGNED_IMM_OPS
from repro.isa.instructions import FORMATS, IMM16_MAX, IMM16_MIN, IMM20_MAX


def test_simple_round_trip():
    instr = Instr(Op.ADD, rd=1, rs=2, rt=3)
    assert decode(encode(instr)) == instr


def test_immediate_sign_extension():
    instr = Instr(Op.ADDI, rd=4, rs=4, imm=-1)
    assert decode(encode(instr)).imm == -1


def test_unsigned_immediate_round_trip():
    instr = Instr(Op.ORI, rd=0, rs=0, imm=0xBEEF)
    assert decode(encode(instr)).imm == 0xBEEF


def test_stdag_uses_wide_immediate():
    instr = Instr(Op.STDAG, rd=11, imm=0xABCDE)
    assert decode(encode(instr)).imm == 0xABCDE


def test_register_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instr(Op.ADD, rd=16, rs=0, rt=0))


def test_signed_immediate_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instr(Op.ADDI, rd=0, rs=0, imm=40000))


def test_unsigned_immediate_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instr(Op.ORI, rd=0, rs=0, imm=-1))


def test_stdag_immediate_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instr(Op.STDAG, rd=0, imm=IMM20_MAX + 1))


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(0xFF000000)


def _instr_strategy():
    """Generate arbitrary legal instructions across all formats."""

    def build(op: Op, rd: int, rs: int, rt: int, simm: int, uimm: int, w: int):
        fmt = FORMATS[op]
        imm = 0
        if fmt in (Fmt.RI, Fmt.RRI, Fmt.I16, Fmt.RB, Fmt.RRB):
            imm = uimm if op in UNSIGNED_IMM_OPS else simm
        elif fmt is Fmt.RI20:
            imm = w
        if fmt is Fmt.NONE:
            return Instr(op)
        if fmt is Fmt.I16:
            return Instr(op, imm=imm)
        if fmt is Fmt.R1:
            return Instr(op, rd=rd)
        if fmt in (Fmt.RI, Fmt.RI20, Fmt.RB):
            return Instr(op, rd=rd, imm=imm)
        if fmt is Fmt.R2:
            return Instr(op, rd=rd, rs=rs)
        if fmt in (Fmt.RRI, Fmt.RRB):
            return Instr(op, rd=rd, rs=rs, imm=imm)
        return Instr(op, rd=rd, rs=rs, rt=rt)

    return st.builds(
        build,
        st.sampled_from(list(Op)),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(IMM16_MIN, IMM16_MAX),
        st.integers(0, 0xFFFF),
        st.integers(0, IMM20_MAX),
    )


@given(_instr_strategy())
def test_encode_decode_is_identity(instr):
    """Property: decode(encode(x)) == x for every legal instruction."""
    assert decode(encode(instr)) == instr


@given(_instr_strategy())
def test_encoding_fits_one_word(instr):
    word = encode(instr)
    assert 0 <= word <= 0xFFFFFFFF
