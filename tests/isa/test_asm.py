"""Assembler behaviour: labels, directives, relocations, diagnostics."""

import pytest

from repro.isa import AsmError, Op, assemble, decode


def test_forward_and_backward_branches():
    module = assemble(
        """
        .module t
        .func main
          br fwd
        back:
          halt
        fwd:
          br back
        .endfunc
        """
    )
    first = decode(module.code[0])
    assert first.op is Op.BR and first.imm == 1  # to offset 2
    last = decode(module.code[2])
    assert last.op is Op.BR and last.imm == -2  # back to offset 1


def test_label_sharing_line_with_instruction():
    module = assemble("top: halt")
    assert module.symbols["top"] == ("code", 0)
    assert len(module.code) == 1


def test_data_and_rodata_sections():
    module = assemble(
        """
        .data
        counter: .word 7
        buf:     .space 3
        .rodata
        msg:     .str "hi"
        """
    )
    assert module.data == [7, 0, 0, 0]
    assert module.rodata == [ord("h"), ord("i"), 0]
    assert module.symbols["msg"] == ("rodata", 0)


def test_la_emits_hi_lo_relocations():
    module = assemble(
        """
        .func main
          la r1, counter
          halt
        .endfunc
        .data
        counter: .word 0
        """
    )
    kinds = {(r.kind, r.offset) for r in module.relocs}
    assert ("hi16", 0) in kinds and ("lo16", 1) in kinds


def test_addr_directive_creates_word_relocs():
    module = assemble(
        """
        .func main
        t1: halt
        t2: halt
        .endfunc
        .rodata
        table: .addr t1 t2
        """
    )
    word_relocs = [r for r in module.relocs if r.kind == "word"]
    assert [r.symbol for r in word_relocs] == ["t1", "t2"]


def test_li_wide_value_expands():
    module = assemble(".func m\n li r0, 100000\n halt\n.endfunc")
    assert len(module.code) == 3  # movhi + ori + halt


def test_li_narrow_value_single_instruction():
    module = assemble(".func m\n li r0, -5\n halt\n.endfunc")
    assert len(module.code) == 2


def test_callx_requires_declared_import():
    with pytest.raises(AsmError, match="undeclared import"):
        assemble(".func m\n callx missing\n.endfunc")


def test_callx_resolves_import_index():
    module = assemble(
        """
        .import alpha
        .import beta
        .func m
          callx beta
          halt
        .endfunc
        """
    )
    assert decode(module.code[0]).imm == 1


def test_func_table_and_frame():
    module = assemble(
        """
        .func f
        .frame 4
          halt
        .endfunc
        .func g
          halt
        .endfunc
        """
    )
    f = module.func_named("f")
    g = module.func_named("g")
    assert (f.start, f.end, f.frame_size) == (0, 1, 4)
    assert (g.start, g.end, g.frame_size) == (1, 2, 0)


def test_handler_ranges_attach_to_function():
    module = assemble(
        """
        .func f
        try0:
          movi r0, 1
        try1:
          halt
        catch:
          halt
        .handler try0 try1 catch 2
        .endfunc
        """
    )
    handler = module.func_named("f").handlers[0]
    assert (handler.start, handler.end, handler.handler, handler.code) == (0, 1, 2, 2)


def test_line_directive_builds_line_table():
    module = assemble(
        """
        .func f
        .line a.c 10
          movi r0, 1
          movi r1, 2
        .line a.c 11
          halt
        .endfunc
        """
    )
    assert module.line_at(0).line == 10
    assert module.line_at(1).line == 10
    assert module.line_at(2).line == 11


def test_undefined_label_reports_line():
    with pytest.raises(AsmError, match="nowhere"):
        assemble(".func m\n br nowhere\n.endfunc")


def test_duplicate_label_rejected():
    with pytest.raises(AsmError, match="duplicate"):
        assemble("x: halt\nx: halt")


def test_exports_only_visible_when_marked():
    module = assemble(
        """
        .export pub
        .func pub
          halt
        .endfunc
        .func priv
          halt
        .endfunc
        """
    )
    assert "pub" in module.exports and "priv" not in module.exports


def test_entry_auto_exported():
    module = assemble(".entry main\n.func main\n halt\n.endfunc")
    assert module.entry_offset() == 0


def test_operand_count_checked():
    with pytest.raises(AsmError, match="wants 3 operands"):
        assemble(".func m\n add r1, r2\n.endfunc")


def test_comments_ignored():
    module = assemble("halt ; trailing\n# full line\nhalt")
    assert len(module.code) == 2
