"""v1-vs-v2 differential sweep: both wire formats replay one recording
to the identical fault on every engine tier.

The VM is deterministic given ``reset_runtime_ids()`` and a fixed
program, so recording the same seeded crasher twice — once with
``ndlog_version=1``, once with ``ndlog_version=2`` — captures the same
run in both formats.  The oracle replays each log on each interpreter
tier and asserts the replays are event-identical: same fault pc/code,
same per-thread control flow, same crash signature.  Coalescing makes
the v2 *log* shorter than the v1 log; it must never make the *replay*
different.

Seeds 0..5 run in the default lane; the full 62-seed sweep is ``slow``
(run via ``scripts/check.sh replay``).
"""

import pytest

from repro import TraceSession
from repro.reconstruct import (
    Reconstructor,
    control_flow_signature,
    diff_control_flow,
    snap_signature,
)
from repro.replay import NDLOG_FORMAT, NDLOG_FORMAT_V2, ReplayEngine
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.sync import reset_runtime_ids
from repro.vm.machine import ENGINES
from repro.workloads import random_crasher

FAST_SEEDS = range(6)
SLOW_SEEDS = range(6, 62)


def _record(seed: int, version: int):
    reset_runtime_ids()
    session = TraceSession(
        process_name=f"rnd{seed}",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            record_replay=True,
            ndlog_version=version,
        ),
    )
    session.add_minic(random_crasher(seed), name="rnd", file_name="rnd.c")
    return session.run(max_cycles=30_000_000)


def assert_v1_v2_equivalent(seed: int, engines) -> None:
    run_v1 = _record(seed, 1)
    run_v2 = _record(seed, 2)
    snap_v1, snap_v2 = run_v1.snap, run_v2.snap
    assert snap_v1 is not None and snap_v2 is not None
    assert snap_v1.replay["ndlog"]["format"] == NDLOG_FORMAT
    assert snap_v2.replay["ndlog"]["format"] == NDLOG_FORMAT_V2
    # Same run, so the recorded evidence mines to the same signature.
    mapfiles = run_v1.mapfiles
    assert snap_signature(snap_v1, mapfiles) == snap_signature(
        snap_v2, mapfiles
    )
    recon = Reconstructor(mapfiles)
    for engine in engines:
        stops = []
        traces = []
        for snap in (snap_v1, snap_v2):
            eng = ReplayEngine(snap, engine=engine)
            stops.append(eng.run_to_fault())
            traces.append(recon.reconstruct(eng.replayed_snap()))
        s1, s2 = stops
        assert s1["reason"] == s2["reason"] == "fault", (engine, s1, s2)
        assert s1["fault"] == s2["fault"], engine
        assert s1["pc"] == s2["pc"], engine
        diffs = diff_control_flow(traces[0], traces[1])
        assert not diffs, f"{engine}: " + "\n".join(diffs)
        assert control_flow_signature(traces[0]) == control_flow_signature(
            traces[1]
        ), engine


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_v1_v2_replay_identically_fast(seed):
    assert_v1_v2_equivalent(seed, ENGINES)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_v1_v2_replay_identically(seed):
    assert_v1_v2_equivalent(seed, ENGINES)
