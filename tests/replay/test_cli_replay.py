"""``tbtrace replay``: the time-travel debugger front end."""

import pytest

from repro.tools.tb import main


def _fault_pc(workqueue_run) -> int:
    return workqueue_run.process.fault.pc


# ----------------------------------------------------------------------
# One-shot modes
# ----------------------------------------------------------------------
def test_replay_runs_to_the_fault(replay_vault, capsys):
    vault, digest = replay_vault
    assert main(["replay", digest[:8], "--vault", vault.root]) == 0
    out = capsys.readouterr().out
    assert out.startswith(f"replaying {digest[:12]}:")
    assert "(replayable: full)" in out
    assert "stopped: fault" in out
    assert "server.process (server.c:" in out
    assert "backtrace:" in out and "threads:" in out


def test_replay_remote_fetches_over_the_wire(replay_vault, capsys):
    vault, digest = replay_vault
    assert main(
        ["replay", digest[:8], "--vault", vault.root, "--remote"]
    ) == 0
    assert "stopped: fault" in capsys.readouterr().out


def test_replay_step_budget(replay_vault, capsys):
    vault, digest = replay_vault
    assert main(
        ["replay", digest[:8], "--vault", vault.root, "--step", "100"]
    ) == 0
    assert "stopped: step" in capsys.readouterr().out


def test_replay_breakpoint(replay_vault, workqueue_run, capsys):
    vault, digest = replay_vault
    assert main([
        "replay", digest[:8], "--vault", vault.root,
        "--break", hex(_fault_pc(workqueue_run)),
    ]) == 0
    assert "stopped: breakpoint" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Resolution failures
# ----------------------------------------------------------------------
def test_replay_unknown_digest_fails(replay_vault, capsys):
    vault, _digest = replay_vault
    assert main(["replay", "feedbeef", "--vault", vault.root]) == 1
    assert "no stored snap matches" in capsys.readouterr().err


def test_replay_legacy_snap_fails_typed(tmp_path, workqueue_run, capsys):
    from repro.fleet import SnapVault
    from repro.runtime.snap import SnapFile

    d = workqueue_run.snap.to_dict()
    d.pop("replay")
    vault = SnapVault(str(tmp_path / "legacy"))
    result = vault.put(SnapFile.from_dict(d))
    assert main(
        ["replay", result.digest[:8], "--vault", vault.root]
    ) == 1
    err = capsys.readouterr().err
    assert "cannot replay" in err and "nondeterminism log" in err


# ----------------------------------------------------------------------
# Interactive loop
# ----------------------------------------------------------------------
def test_replay_interactive_session(replay_vault, workqueue_run,
                                    monkeypatch, capsys):
    vault, digest = replay_vault
    fault_pc = _fault_pc(workqueue_run)
    script = iter([
        "help-nonsense",
        f"break {fault_pc:#x}",
        "continue",
        "regs",
        "bt",
        "mem 0x1000 4",
        "threads",
        "info",
        f"unbreak {fault_pc:#x}",
        "run",
        "quit",
    ])
    monkeypatch.setattr(
        "builtins.input", lambda prompt="": next(script)
    )
    assert main(
        ["replay", digest[:8], "--vault", vault.root, "-i"]
    ) == 0
    out = capsys.readouterr().out
    assert "commands:" in out
    assert "unknown command 'help-nonsense'" in out
    assert f"breakpoint at pc {fault_pc:#x}" in out
    assert "stopped: breakpoint" in out
    assert "tid " in out and "r0 :" in out
    assert "0x1000:" in out
    assert "breakpoints: " in out
    assert "stopped: fault" in out


def test_replay_interactive_eof_exits_cleanly(replay_vault, monkeypatch,
                                              capsys):
    vault, digest = replay_vault

    def _eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", _eof)
    assert main(
        ["replay", digest[:8], "--vault", vault.root, "-i"]
    ) == 0


# ----------------------------------------------------------------------
# Replayability surfaced by `info`
# ----------------------------------------------------------------------
def test_info_reports_replayable_full(tmp_path, workqueue_run, capsys):
    from repro.runtime.archive import compress_snap

    path = tmp_path / "crash.tbsz"
    path.write_bytes(compress_snap(workqueue_run.snap))
    assert main(["info", str(path)]) == 0
    assert "replayable: full" in capsys.readouterr().out


def test_info_reports_legacy_none(tmp_path, workqueue_run, capsys):
    from repro.runtime.archive import compress_snap
    from repro.runtime.snap import SnapFile

    d = workqueue_run.snap.to_dict()
    d.pop("replay")
    path = tmp_path / "legacy.tbsz"
    path.write_bytes(compress_snap(SnapFile.from_dict(d)))
    assert main(["info", str(path)]) == 0
    assert "replayable: none" in capsys.readouterr().out
