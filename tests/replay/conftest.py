"""Shared fixtures: one recorded crash, reused across the replay suite.

The workqueue example (three workers, job #7 crashes one of them) is
the canonical replay subject: multithreaded, lock-contended, and its
snap-at-fault carries a full ``tb-ndlog``.  Recording it once per
session keeps the suite fast; every consumer treats the snap as
read-only (damage tests copy first).
"""

import importlib.util
from pathlib import Path

import pytest

from repro import TraceSession
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.sync import reset_runtime_ids

_REPO = Path(__file__).resolve().parents[2]


def load_example(name: str):
    """Import an ``examples/`` module fresh (they are not a package)."""
    spec = importlib.util.spec_from_file_location(
        f"replay_example_{name}", _REPO / "examples" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def record_workqueue():
    """Run the workqueue example with replay recording on."""
    example = load_example("multithreaded_crash")
    reset_runtime_ids()
    session = TraceSession(
        process_name="workqueue",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            main_buffers=4,
            max_buffers=6,
            record_replay=True,
        ),
    )
    session.add_minic(example.SERVER, name="server", file_name="server.c")
    return session.run(max_cycles=20_000_000)


@pytest.fixture(scope="session")
def workqueue_run():
    run = record_workqueue()
    assert run.snap is not None and run.snap.replayable == "full"
    return run


@pytest.fixture(scope="session")
def replay_vault(tmp_path_factory, workqueue_run):
    """A vault holding the recorded workqueue snap and its mapfiles."""
    from repro.fleet import SnapVault

    vault = SnapVault(str(tmp_path_factory.mktemp("replay-vault") / "vault"))
    # Mapfiles first: signature mining at put-time needs them.
    for mapfile in workqueue_run.mapfiles:
        vault.put_mapfile(mapfile)
    result = vault.put(workqueue_run.snap)
    vault.flush_index()
    return vault, result.digest
