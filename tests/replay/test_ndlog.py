"""The ``tb-ndlog`` container: validation, status, legacy compat.

These tests exercise the *v1* (plain JSON) layout — snaps now carry
packed v2 by default, so ``_ndlog`` decodes back to the v1 in-memory
form before tampering with the event list.  The packed format's own
byte-level checks live in ``test_ndlog_v2.py``.
"""

import pytest

from repro.replay import (
    NDLOG_FORMAT,
    ReplayUnavailable,
    config_from_dict,
    config_to_dict,
    decode_events,
    policy_from_dict,
    policy_to_dict,
    replayable_status,
    validate_ndlog,
)
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.snap import SnapFile


def _ndlog(workqueue_run) -> dict:
    import json

    raw = workqueue_run.snap.replay["ndlog"]
    return json.loads(json.dumps(decode_events(raw)))


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_recorded_log_validates(workqueue_run):
    validate_ndlog(workqueue_run.snap.replay["ndlog"])  # as recorded (v2)
    validate_ndlog(_ndlog(workqueue_run))  # decoded v1 layout


def test_unknown_format_is_typed(workqueue_run):
    ndlog = _ndlog(workqueue_run)
    ndlog["format"] = "tb-ndlog/99"
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == "format"
    assert NDLOG_FORMAT in str(excinfo.value)


@pytest.mark.parametrize(
    "key", ["pid", "machine", "runtime_id", "config", "modules",
            "start_threads", "rpc_services"]
)
def test_missing_header_key_names_the_segment(workqueue_run, key):
    ndlog = _ndlog(workqueue_run)
    del ndlog["header"][key]
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == f"header.{key}"


def test_event_count_mismatch_is_truncation(workqueue_run):
    ndlog = _ndlog(workqueue_run)
    ndlog["events"].pop()
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == "events"
    assert "truncated" in str(excinfo.value)


def test_malformed_event_names_its_index(workqueue_run):
    ndlog = _ndlog(workqueue_run)
    ndlog["events"][3] = ["??", 1, 2]
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == "events[3]"


def test_wrong_arity_names_the_tag(workqueue_run):
    ndlog = _ndlog(workqueue_run)
    idx = next(
        i for i, ev in enumerate(ndlog["events"]) if ev[0] == "s"
    )
    ndlog["events"][idx] = ["s", 0]
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == f"events[{idx}]"
    assert "'s'" in str(excinfo.value)


# ----------------------------------------------------------------------
# Replayable status and legacy compatibility
# ----------------------------------------------------------------------
def test_status_full_seed_none(workqueue_run):
    snap = workqueue_run.snap
    assert replayable_status(snap.replay) == "full"
    assert replayable_status({"seed": snap.replay["seed"]}) == "seed-only"
    assert replayable_status({}) == "none"
    assert snap.replayable == "full"


def test_legacy_snap_round_trips_without_replay_key(workqueue_run):
    """A pre-replay snap dict has no ``replay`` key — and a snap with
    nothing to record must not grow one (byte-stable legacy digests)."""
    d = workqueue_run.snap.to_dict()
    assert "replay" in d
    d.pop("replay")
    legacy = SnapFile.from_dict(d)
    assert legacy.replayable == "none"
    assert "replay" not in legacy.to_dict()


def test_salvage_load_keeps_replay(workqueue_run):
    snap, notes = SnapFile.from_dict_salvage(workqueue_run.snap.to_dict())
    assert not notes
    assert snap.replayable == "full"


# ----------------------------------------------------------------------
# Config / policy round trip
# ----------------------------------------------------------------------
def test_config_round_trip():
    config = RuntimeConfig(
        policy=SnapPolicy.parse(
            "snap on unhandled\nsnap on exception\nsuppress duplicates on"
        ),
        main_buffers=4,
        max_buffers=6,
        record_replay=True,
    )
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt.main_buffers == 4
    assert rebuilt.max_buffers == 6
    # The rebuilt config never re-records or re-stores: replay is a
    # read-only re-execution.
    assert rebuilt.record_replay is False
    assert rebuilt.snap_store is None
    assert policy_to_dict(rebuilt.policy) == policy_to_dict(config.policy)


def test_policy_round_trip_preserves_triggers():
    policy = SnapPolicy.parse("snap on unhandled\nsuppress duplicates on")
    assert policy_to_dict(policy_from_dict(policy_to_dict(policy))) == (
        policy_to_dict(policy)
    )
