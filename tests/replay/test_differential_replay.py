"""Differential harness: replayed control flow == reconstructed trace.

The replay contract (tentpole part 2): re-executing a snap's
nondeterminism log on the fast engine must reproduce the recorded run
*exactly* — per thread, the same ordered source lines, the same
exception events, the same fault signature.  This suite proves it
three ways:

* the shipped example catalogue (workqueue crash, cross-machine RPC
  with a server-side fault and a client-side fault after a completed
  round trip);
* seeded random multithreaded programs
  (:func:`repro.workloads.random_crasher`) — locks, sleeps, helper
  calls, a planted DIVIDE_BY_ZERO — each run both instrumented and
  bare;
* a fast subset runs by default, the bulk sweep is ``slow`` (run via
  ``scripts/check.sh replay``).
"""

import pytest

from repro import TraceSession
from repro.reconstruct import (
    Reconstructor,
    control_flow_events,
    control_flow_signature,
    diff_control_flow,
    snap_signature,
)
from repro.replay import ReplayEngine
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.sync import reset_runtime_ids
from repro.workloads import random_crasher

# Seeds 0..11 run in the default lane; the full sweep adds 12..61 for
# the >= 50 random programs the replay acceptance bar asks for.
FAST_SEEDS = range(12)
SLOW_SEEDS = range(12, 62)


def assert_replay_matches(run) -> None:
    """The differential oracle: record, replay, reconstruct, compare."""
    snap = run.snap
    assert snap is not None and snap.replayable == "full"
    engine = ReplayEngine(snap)
    stop = engine.run_to_fault()
    assert stop["reason"] == "fault"
    assert stop["fault"]["pc"] == run.process.fault.pc
    assert stop["fault"]["code"] == int(run.process.fault.code)

    recon = Reconstructor(run.mapfiles)
    recorded = recon.reconstruct(snap)
    replayed = recon.reconstruct(engine.replayed_snap())
    diffs = diff_control_flow(recorded, replayed)
    assert not diffs, "\n".join(diffs)
    assert control_flow_signature(recorded) == control_flow_signature(
        replayed
    )
    assert snap_signature(snap, run.mapfiles) == snap_signature(
        engine.replayed_snap(), run.mapfiles
    )


def run_random(seed: int, instrument: bool):
    reset_runtime_ids()
    session = TraceSession(
        process_name=f"rnd{seed}",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            record_replay=True,
        ),
    )
    session.add_minic(
        random_crasher(seed), name="rnd", file_name="rnd.c",
        instrument=instrument,
    )
    return session.run(max_cycles=30_000_000)


# ----------------------------------------------------------------------
# The example catalogue
# ----------------------------------------------------------------------
def test_workqueue_example_replays_event_identically(workqueue_run):
    assert_replay_matches(workqueue_run)
    # The canonical example really exercises the multithreaded path:
    # all four threads contribute control flow.
    trace = Reconstructor(workqueue_run.mapfiles).reconstruct(
        workqueue_run.snap
    )
    flows = control_flow_events(trace)
    assert len(flows) == 4
    assert all(flows.values())


CLIENT_CRASH = """
int argbuf[1];
int retbuf[1];
int main() {
    argbuf[0] = 21;
    int status;
    status = rpc_call(7, argbuf, 1, retbuf, 1);
    return 100 / (retbuf[0] - 42);
}
"""

SERVER_OK = """
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    poke(retaddr, peek(argaddr) * 2);
    return 0;
}
"""

CLIENT_OK = """
int argbuf[1];
int retbuf[1];
int main() {
    argbuf[0] = 21;
    rpc_call(7, argbuf, 1, retbuf, 1);
    return 0;
}
"""

SERVER_CRASH = """
int handle(int argaddr, int arglen, int retaddr, int retcap) {
    int value;
    value = peek(argaddr);
    poke(retaddr, 100 / (value - 21));
    return 0;
}
"""


def _run_pair(client_src: str, server_src: str, snapping: str):
    from repro.distributed import DistributedSession

    reset_runtime_ids()
    session = DistributedSession(
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled\nsnap on exception"),
            record_replay=True,
        )
    )
    m1 = session.add_machine("client-box")
    m2 = session.add_machine("server-box", clock_skew=5_000_000)
    session.add_process(m1, "client", client_src, start=True)
    session.add_process(m2, "server", server_src, services={7: "handle"})
    result = session.run()
    snaps = [s for s in result.snaps if s.process_name == snapping]
    assert snaps, [s.process_name for s in result.snaps]
    return snaps[0], result.mapfiles


def _assert_distributed_replay(snap, mapfiles):
    """Replay one side of the pair and return (stop, recorded trace)."""
    assert snap.replayable == "full"
    engine = ReplayEngine(snap)
    stop = engine.run_to_fault()
    recon = Reconstructor(mapfiles)
    recorded = recon.reconstruct(snap)
    replayed = recon.reconstruct(engine.replayed_snap())
    diffs = diff_control_flow(recorded, replayed)
    assert not diffs, "\n".join(diffs)
    assert snap_signature(snap, mapfiles) == snap_signature(
        engine.replayed_snap(), mapfiles
    )
    return stop, recorded


def test_rpc_server_fault_replays():
    """Server side: the recorded ``rs`` event re-spawns the service
    thread at the recorded cycle on the skewed machine.  The handler's
    trap becomes an RPC error reply, so the snap fires on *exception*
    and replay runs the log out rather than stopping on a process
    fault — the exception must still reappear in the replayed trace."""
    snap, mapfiles = _run_pair(CLIENT_OK, SERVER_CRASH, "server")
    stop, recorded = _assert_distributed_replay(snap, mapfiles)
    assert stop["reason"] == "end"
    assert any(t.events("exception") for t in recorded.threads)


def test_rpc_client_fault_replays():
    """Client side: the recorded ``rr`` event supplies the reply words
    without any server present at replay time."""
    snap, mapfiles = _run_pair(CLIENT_CRASH, SERVER_OK, "client")
    stop, _recorded = _assert_distributed_replay(snap, mapfiles)
    assert stop["reason"] == "fault"
    assert stop["fault"]["detail"] == "DIV"


# ----------------------------------------------------------------------
# Seeded random multithreaded programs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("instrument", [True, False],
                         ids=["instrumented", "bare"])
@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_program_replays_fast(seed, instrument):
    run = run_random(seed, instrument)
    assert_replay_matches(run)
    if instrument:
        sig = snap_signature(run.snap, run.mapfiles)
        assert sig and "DIVIDE_BY_ZERO" in sig


@pytest.mark.slow
@pytest.mark.parametrize("instrument", [True, False],
                         ids=["instrumented", "bare"])
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_program_replays(seed, instrument):
    run = run_random(seed, instrument)
    assert_replay_matches(run)
