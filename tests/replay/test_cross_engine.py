"""Cross-tier replay differential: record on one engine, replay on
another.

The nondeterminism log records *instruction-count* slice boundaries and
event positions, so replay must land on identical instruction boundaries
regardless of which interpreter tier retires them.  The tier-3 block
engine compiles multi-instruction units, which makes this the sharpest
test of its slice-boundary contract: a unit that ever straddled a forced
slice would shift every subsequent event.

Both directions are exercised over the seeded ``random_crasher``
programs (locks, sleeps, helper calls, a planted fault): the fast lane
runs seeds 0..11, the slow lane (``scripts/check.sh tier3``) the
remaining 12..61 — the same 62-program population as the same-engine
replay suite.
"""

import pytest

from repro import TraceSession
from repro.reconstruct import (
    Reconstructor,
    control_flow_signature,
    diff_control_flow,
    snap_signature,
)
from repro.replay import ReplayEngine
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.runtime.sync import reset_runtime_ids
from repro.vm import Machine
from repro.workloads import random_crasher

FAST_SEEDS = range(12)
SLOW_SEEDS = range(12, 62)


def record_random(seed: int, engine: str):
    """Record one seeded crasher on the given interpreter tier."""
    reset_runtime_ids()
    session = TraceSession(
        machine=Machine(engine=engine),
        process_name=f"rnd{seed}",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            record_replay=True,
        ),
    )
    session.add_minic(
        random_crasher(seed), name="rnd", file_name="rnd.c", instrument=True
    )
    return session.run(max_cycles=30_000_000)


def assert_cross_replay(run, replay_engine: str) -> None:
    """Replay ``run``'s snap on ``replay_engine``; demand event-identical
    control flow and an unchanged crash signature."""
    snap = run.snap
    assert snap is not None and snap.replayable == "full"
    engine = ReplayEngine(snap, engine=replay_engine)
    stop = engine.run_to_fault()
    assert stop["reason"] == "fault"
    assert stop["fault"]["pc"] == run.process.fault.pc
    assert stop["fault"]["code"] == int(run.process.fault.code)

    recon = Reconstructor(run.mapfiles)
    recorded = recon.reconstruct(snap)
    replayed = recon.reconstruct(engine.replayed_snap())
    diffs = diff_control_flow(recorded, replayed)
    assert not diffs, "\n".join(diffs)
    assert control_flow_signature(recorded) == control_flow_signature(replayed)
    assert snap_signature(snap, run.mapfiles) == snap_signature(
        engine.replayed_snap(), run.mapfiles
    )


def assert_both_directions(seed: int) -> None:
    """Record on fast, replay on block — and vice versa.  The two
    recordings must also carry identical crash signatures: the recording
    tier is not allowed to leave a fingerprint in the evidence."""
    fast_run = record_random(seed, "fast")
    assert_cross_replay(fast_run, "block")
    block_run = record_random(seed, "block")
    assert_cross_replay(block_run, "fast")
    assert snap_signature(fast_run.snap, fast_run.mapfiles) == snap_signature(
        block_run.snap, block_run.mapfiles
    )


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_cross_engine_replay(seed):
    assert_both_directions(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_cross_engine_replay_full_sweep(seed):
    assert_both_directions(seed)
