"""The packed ``tb-ndlog/2`` encoding: round trips, golden bytes,
coalescing rules, and the strict byte-level decoder.

The plain-JSON (v1) container checks live in ``test_ndlog.py``; the
v1-vs-v2 replay equivalence sweep lives in ``test_v2_differential.py``.
"""

import base64
import copy
import json

import pytest

from repro.replay import (
    NDLOG_FORMAT,
    NDLOG_FORMAT_V2,
    ReplayUnavailable,
    decode_events,
    encode_ndlog,
    validate_ndlog,
)

HEADER = {
    "pid": 1,
    "process_name": "p",
    "machine": "m",
    "clock_skew": 0,
    "io_latency": 0,
    "runtime_id": 7,
    "config": {},
    "modules": [],
    "start_threads": [],
    "rpc_services": {},
}

EVENTS = [
    ["s", 1, 0, 0, 4],
    ["s", 1, 10, 40, 100],
    ["s", 2, 50, 40, 200],
    ["sig", 9],
    ["s", 1, 95, 40, 104],
    ["s", 1, 140, 37, 101, 1],
]
END_CYCLES = [10, 50, 90, None, 135, None]


def _encode(events=EVENTS, end_cycles=None):
    return encode_ndlog(HEADER, [list(e) for e in events], end_cycles)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_exact_round_trip_without_end_cycles():
    """No end-cycle evidence -> no coalescing -> decode == input."""
    v2 = _encode()
    assert v2["format"] == NDLOG_FORMAT_V2
    decoded = decode_events(v2)
    assert decoded["format"] == NDLOG_FORMAT
    assert decoded["events"] == EVENTS
    assert decoded["n_events"] == len(EVENTS)


def test_round_trip_preserves_event_order_around_rares():
    events = [
        ["sig", 5],
        ["s", 1, 0, 3, 10],
        ["rr", 0, 7, 0, [1], None],
        ["rs", 8, 7, [2], 1, None],
        ["s", 2, 9, 3, 20],
        ["k", 30],
    ]
    assert decode_events(_encode(events))["events"] == events


def test_recorded_log_round_trips(workqueue_run):
    """Decode the recorded v2 snap log, re-encode columnar (without
    coalescing evidence), decode again: a fixed point."""
    raw = workqueue_run.snap.replay["ndlog"]
    assert raw["format"] == NDLOG_FORMAT_V2
    decoded = decode_events(raw)
    again = decode_events(encode_ndlog(decoded["header"], decoded["events"]))
    assert again["events"] == decoded["events"]


def test_negative_values_round_trip():
    """Zigzag columns carry descending sequences (end pcs jump back)."""
    events = [
        ["s", 1, 0, 5, 1000],
        ["s", 2, 100, 5, 3],
        ["s", 1, 200, 2, 500],
    ]
    assert decode_events(_encode(events))["events"] == events


# ----------------------------------------------------------------------
# Byte-stable golden encoding
# ----------------------------------------------------------------------
def test_golden_encoding_is_byte_stable():
    """The exact column bytes are part of the format contract: any
    codec change that moves them is a wire-format break and must bump
    the version tag instead."""
    v2 = _encode(EVENTS, END_CYCLES)
    assert v2["slices"] == {
        "count": 5,
        "tids": "AQICAQEC",
        "starts": "ABRQWlo=",
        "counts": "AFAAAAU=",
        "end_pcs": "CMAByAG/AQU=",
        "partial": [4],
    }
    assert v2["rare"] == [[3, ["sig", 9]]]
    assert v2["n_events"] == 6
    # And the container is pure JSON (snaps embed it verbatim).
    assert json.loads(json.dumps(v2)) == v2


# ----------------------------------------------------------------------
# Coalescing rules
# ----------------------------------------------------------------------
def _slices(v2) -> int:
    return v2["slices"]["count"]


def test_contiguous_same_thread_slices_coalesce():
    events = [
        ["s", 1, 10, 40, 100],
        ["s", 1, 50, 40, 120],
        ["s", 1, 90, 40, 140],
    ]
    v2 = _encode(events, [50, 90, 130])
    assert _slices(v2) == 1
    assert decode_events(v2)["events"] == [["s", 1, 10, 120, 140]]


def test_noncontiguous_cycles_do_not_coalesce():
    """Another process advanced the shared clock in between: the gap
    is real nondeterminism and must stay a forced boundary."""
    events = [["s", 1, 10, 40, 100], ["s", 1, 55, 40, 120]]
    v2 = _encode(events, [50, 95])
    assert _slices(v2) == 2


def test_other_thread_breaks_the_run():
    events = [
        ["s", 1, 10, 40, 100],
        ["s", 2, 50, 40, 200],
        ["s", 1, 90, 40, 120],
    ]
    v2 = _encode(events, [50, 90, 130])
    assert _slices(v2) == 3


def test_rare_event_breaks_the_run():
    """A signal delivered between two slices must stay between them."""
    events = [
        ["s", 1, 10, 40, 100],
        ["sig", 9],
        ["s", 1, 50, 40, 120],
    ]
    v2 = _encode(events, [50, None, 90])
    assert _slices(v2) == 2
    assert decode_events(v2)["events"] == events


def test_prologue_slice_never_merges():
    """n == 0 slices (thread_started hook, signal death) are their own
    forced points."""
    events = [["s", 1, 10, 0, 4], ["s", 1, 10, 40, 100]]
    v2 = _encode(events, [10, 50])
    assert _slices(v2) == 2


def test_partial_slice_terminates_but_never_continues():
    """The open-at-snap slice may absorb into its predecessor (the
    merged slice stays partial) but nothing merges after it."""
    events = [
        ["s", 1, 10, 40, 100],
        ["s", 1, 50, 7, 104, 1],
    ]
    v2 = _encode(events, [50, None])
    assert _slices(v2) == 1
    assert decode_events(v2)["events"] == [["s", 1, 10, 47, 104, 1]]


def test_without_end_cycles_nothing_coalesces():
    events = [["s", 1, 10, 40, 100], ["s", 1, 50, 40, 120]]
    assert _slices(_encode(events, None)) == 2


# ----------------------------------------------------------------------
# Strict decoding: every damage shape is a named segment
# ----------------------------------------------------------------------
def _damaged(mutate):
    v2 = copy.deepcopy(_encode(EVENTS, END_CYCLES))
    mutate(v2)
    return v2


def _expect(segment: str, mutate):
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(_damaged(mutate))
    assert excinfo.value.segment == segment
    return str(excinfo.value)


def _chop(v2, key, n=1):
    raw = base64.b64decode(v2["slices"][key])
    v2["slices"][key] = base64.b64encode(raw[: len(raw) - n]).decode()


def test_truncated_column_is_named():
    message = _expect("slices.starts", lambda v2: _chop(v2, "starts"))
    assert "truncated" in message


def test_truncated_tid_column_is_named():
    _expect("slices.tids", lambda v2: _chop(v2, "tids"))


def test_trailing_bytes_are_named():
    def mutate(v2):
        raw = base64.b64decode(v2["slices"]["counts"])
        v2["slices"]["counts"] = base64.b64encode(raw + b"\x00").decode()

    message = _expect("slices.counts", mutate)
    assert "trailing" in message


def test_runaway_varint_is_named():
    def mutate(v2):
        raw = base64.b64decode(v2["slices"]["end_pcs"])
        v2["slices"]["end_pcs"] = base64.b64encode(raw + b"\x80" * 12).decode()

    _expect("slices.end_pcs", mutate)


def test_bad_base64_is_named():
    _expect(
        "slices.starts",
        lambda v2: v2["slices"].__setitem__("starts", "!!not-base64!!"),
    )


def test_missing_column_is_named():
    _expect("slices.counts", lambda v2: v2["slices"].pop("counts"))


def test_wrong_count_is_named():
    """count disagrees with the columns: the tid runs come up short."""
    _expect(
        "slices.tids",
        lambda v2: v2["slices"].__setitem__(
            "count", v2["slices"]["count"] + 1
        ),
    )


def test_negative_running_value_is_named():
    """A delta stream that drives a start cycle negative is damage,
    not a legal recording."""

    def mutate(v2):
        out = bytearray()
        out += base64.b64decode(v2["slices"]["starts"])[:1]  # first: 0
        out += b"\x01"  # zigzag(-1): the clock runs backwards
        out += b"\x00" * (v2["slices"]["count"] - 2)
        v2["slices"]["starts"] = base64.b64encode(bytes(out)).decode()

    message = _expect("slices.starts", mutate)
    assert "negative" in message


def test_bad_partial_list_is_named():
    _expect(
        "slices.partial",
        lambda v2: v2["slices"].__setitem__("partial", [99]),
    )


def test_malformed_rare_entry_is_named():
    _expect("rare[0]", lambda v2: v2["rare"].__setitem__(0, ["sig", 9]))


def test_wrong_typed_rare_event_is_named():
    _expect(
        "rare[0]",
        lambda v2: v2["rare"].__setitem__(0, [3, ["sig", "9"]]),
    )


def test_slice_hidden_in_rare_is_named():
    _expect(
        "rare[0]",
        lambda v2: v2["rare"].__setitem__(0, [3, ["s", 1, 0, 1, 4]]),
    )


def test_out_of_order_rare_position_is_named():
    def mutate(v2):
        v2["rare"].append([0, ["k", 99]])  # positions must not decrease
        v2["n_events"] += 1

    _expect("rare[1]", mutate)


def test_n_events_mismatch_is_named():
    message = _expect(
        "events", lambda v2: v2.__setitem__("n_events", 99)
    )
    assert "99" in message


def test_missing_slices_is_named():
    _expect("slices", lambda v2: v2.pop("slices"))


def test_missing_rare_is_named():
    _expect("rare", lambda v2: v2.pop("rare"))


def test_missing_header_key_is_named():
    _expect("header.runtime_id", lambda v2: v2["header"].pop("runtime_id"))


# ----------------------------------------------------------------------
# The per-field type checks are shared with v1 validation
# ----------------------------------------------------------------------
def test_v1_wrong_typed_field_is_named():
    """Satellite regression: a stringified cycle count used to pass
    arity-only validation and explode as TypeError inside the engine."""
    ndlog = {
        "format": NDLOG_FORMAT,
        "header": dict(HEADER),
        "events": [["s", 1, 0, 3, 10], ["s", 1, "10", 3, 20]],
        "n_events": 2,
    }
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == "events[1]"
    assert "start_cycle" in str(excinfo.value)


@pytest.mark.parametrize(
    "event",
    [
        ["s", 1.0, 0, 3, 10],  # float tid
        ["sig", True],  # bool signum
        ["rr", 0, 7, 0, [1, "2"], None],  # non-int result word
        ["rs", 8, 7, [2], 1, "triple"],  # payload not a mapping
        ["x", 9, 3, {}],  # reason not a string
        ["k", "30"],  # string cycle
    ],
)
def test_v1_field_type_catalogue(event):
    ndlog = {
        "format": NDLOG_FORMAT,
        "header": dict(HEADER),
        "events": [event],
        "n_events": 1,
    }
    with pytest.raises(ReplayUnavailable) as excinfo:
        validate_ndlog(ndlog)
    assert excinfo.value.segment == "events[0]"


# ----------------------------------------------------------------------
# Recorder version selection
# ----------------------------------------------------------------------
def test_recorder_emits_both_versions(workqueue_run):
    recorder = workqueue_run.runtime.recorder
    v1 = recorder.to_dict(version=1)
    v2 = recorder.to_dict()
    assert v1["format"] == NDLOG_FORMAT
    assert v2["format"] == NDLOG_FORMAT_V2
    validate_ndlog(v1)
    validate_ndlog(v2)
    # Same recording: the rare-event streams agree, and the packed
    # slices cover exactly the same instructions.
    rare_v1 = [e for e in v1["events"] if e[0] != "s"]
    assert [e for e in rare_v1] == [e for _, e in v2["rare"]]
    v1_instr = sum(e[3] for e in v1["events"] if e[0] == "s")
    v2_instr = sum(
        e[3] for e in decode_events(v2)["events"] if e[0] == "s"
    )
    assert v1_instr == v2_instr


def test_recorder_rejects_unknown_version(workqueue_run):
    with pytest.raises(ValueError):
        workqueue_run.snap  # fixture sanity
        workqueue_run.runtime.recorder.to_dict(version=3)


def test_v2_is_smaller_than_v1(workqueue_run):
    """The point of the format: the packed log is much smaller, before
    compression even helps."""
    recorder = workqueue_run.runtime.recorder
    v1 = len(json.dumps(recorder.to_dict(version=1)).encode())
    v2 = len(json.dumps(recorder.to_dict()).encode())
    assert v2 < v1
