"""Deterministic time-travel replay: record, re-execute, compare."""
