"""The replay engine: deterministic re-execution with debugger controls."""

import json

import pytest

from repro.replay import ReplayDivergence, ReplayEngine, ReplayUnavailable
from repro.runtime.snap import SnapFile


def _fresh_snap(workqueue_run) -> SnapFile:
    """An independent copy — engines mutate nothing, but be sure."""
    return SnapFile.from_dict(workqueue_run.snap.to_dict())


# ----------------------------------------------------------------------
# Run to fault
# ----------------------------------------------------------------------
def test_run_to_fault_reaches_the_recorded_fault(workqueue_run):
    engine = ReplayEngine(_fresh_snap(workqueue_run))
    stop = engine.run_to_fault()
    assert stop["reason"] == "fault"
    fault = workqueue_run.process.fault
    assert stop["fault"]["pc"] == fault.pc
    assert stop["fault"]["code"] == int(fault.code)
    assert stop["events_applied"] == stop["events_total"]
    assert engine.finished


def test_replayed_snap_matches_the_recording(workqueue_run):
    engine = ReplayEngine(_fresh_snap(workqueue_run))
    engine.run_to_fault()
    replayed = engine.replayed_snap()
    source = workqueue_run.snap
    assert replayed.reason == source.reason
    assert replayed.clock == source.clock
    assert len(replayed.threads) == len(source.threads)


# ----------------------------------------------------------------------
# Debugger surface
# ----------------------------------------------------------------------
def test_step_budget_stops_early(workqueue_run):
    engine = ReplayEngine(_fresh_snap(workqueue_run))
    stop = engine.step(100)
    assert stop["reason"] == "step"
    assert not engine.finished
    assert stop["cycle"] < workqueue_run.snap.clock


def test_breakpoint_stops_before_the_fault(workqueue_run):
    fault_pc = workqueue_run.process.fault.pc
    engine = ReplayEngine(_fresh_snap(workqueue_run),
                          breakpoints=[fault_pc])
    stop = engine.cont()
    assert stop["reason"] == "breakpoint"
    assert stop["pc"] == fault_pc
    # The first hit precedes the fatal one: job 7 is not the first job.
    assert stop["cycle"] < workqueue_run.snap.clock
    # Resuming past every later hit still lands on the recorded fault.
    engine.remove_breakpoint(fault_pc)
    assert engine.cont()["reason"] == "fault"


def test_inspection_at_a_stop(workqueue_run):
    engine = ReplayEngine(_fresh_snap(workqueue_run))
    stop = engine.run_to_fault()
    regs = engine.registers(stop["tid"])
    assert regs["tid"] == stop["tid"]
    assert len(regs["regs"]) >= 8
    frames = engine.backtrace(stop["tid"])
    assert frames and frames[0]["pc"] == stop["pc"]
    resolved = engine.resolve_pc(stop["pc"])
    assert resolved["func"] == "process"
    assert resolved["file"] == "server.c"
    listing = engine.threads()
    assert {t["tid"] for t in listing} >= {0, 1, 2, 3}


def test_read_memory_mapped_and_unmapped(workqueue_run):
    engine = ReplayEngine(_fresh_snap(workqueue_run))
    engine.step(50)
    thread = engine.current_thread()
    words = engine.read_memory(thread.pc & ~3, 4)
    assert len(words) == 4 and all(w is not None for w in words)
    assert engine.read_memory(0x7FFF_F000, 2) == [None, None]


# ----------------------------------------------------------------------
# Refusal and divergence
# ----------------------------------------------------------------------
def test_legacy_snap_refuses_with_segment(workqueue_run):
    d = workqueue_run.snap.to_dict()
    d.pop("replay")
    with pytest.raises(ReplayUnavailable) as excinfo:
        ReplayEngine(SnapFile.from_dict(d))
    assert excinfo.value.segment == "ndlog"


def test_seed_only_snap_refuses(workqueue_run):
    d = workqueue_run.snap.to_dict()
    d["replay"] = {"seed": d["replay"]["seed"]}
    with pytest.raises(ReplayUnavailable) as excinfo:
        ReplayEngine(SnapFile.from_dict(d))
    assert excinfo.value.segment == "ndlog"


def test_tampered_slice_is_a_divergence(workqueue_run):
    from repro.replay import decode_events

    d = json.loads(json.dumps(workqueue_run.snap.to_dict()))
    # The snap carries packed v2; tamper in the v1 layout (the engine
    # accepts both) so the slice fields are directly editable.
    ndlog = json.loads(json.dumps(decode_events(d["replay"]["ndlog"])))
    # Shrink one scheduler slice: replay then executes fewer
    # instructions than the recording claims and must notice.
    ev = next(e for e in ndlog["events"] if e[0] == "s" and e[3] > 1)
    ev[3] -= 1
    d["replay"]["ndlog"] = ndlog
    with pytest.raises(ReplayDivergence):
        ReplayEngine(SnapFile.from_dict(d)).run_to_fault()
