"""Bucket verification: replay the exemplar, confirm the signature."""

import pytest

from repro.fleet import SnapVault, VaultQuery
from repro.fleet.triage import build_report, render_report_text, top_buckets
from repro.runtime.snap import SnapFile


def test_verify_bucket_confirms_the_diagnosis(replay_vault):
    vault, digest = replay_vault
    query = VaultQuery(vault)
    (bucket,) = top_buckets(vault)
    assert bucket.exemplar == digest
    verdict = query.verify_bucket(bucket)
    assert verdict["verified"] is True
    assert verdict["digest"] == digest
    assert verdict["replay_sig"] == bucket.sig
    assert "reproduces" in verdict["reason"]


def test_verify_bucket_reports_unreplayable_exemplar(
    replay_vault, tmp_path, workqueue_run
):
    d = workqueue_run.snap.to_dict()
    d.pop("replay")
    legacy = SnapFile.from_dict(d)
    vault = SnapVault(str(tmp_path / "legacy-vault"))
    for mapfile in workqueue_run.mapfiles:
        vault.put_mapfile(mapfile)
    vault.put(legacy)
    (bucket,) = top_buckets(vault)
    verdict = VaultQuery(vault).verify_bucket(bucket)
    assert verdict["verified"] is False
    assert "replay-unavailable" in verdict["reason"]
    assert "ndlog" in verdict["reason"]


def test_verify_bucket_entry_is_marked_replayable(replay_vault):
    vault, digest = replay_vault
    assert vault.index[digest].replayable == "full"


def test_report_stamps_replay_verified(replay_vault):
    vault, _digest = replay_vault
    query = VaultQuery(vault)
    report = build_report(query, verify=True)
    (doc,) = report["buckets"]
    assert doc["replay_verified"]["verified"] is True
    text = "\n".join(render_report_text(report))
    assert "replay: VERIFIED" in text


def test_report_without_verify_has_no_stamp(replay_vault):
    vault, _digest = replay_vault
    report = build_report(VaultQuery(vault))
    (doc,) = report["buckets"]
    assert "replay_verified" not in doc
    assert "replay:" not in "\n".join(render_report_text(report))
