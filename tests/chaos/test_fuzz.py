"""Seeded fuzz sweep: salvage never raises, strict fails usefully.

The sweep damages *copies* of one healthy three-machine run, so each
case costs only an injector pass plus a reconstruction, not a fresh
simulated network run.  The default lane runs a fast subset; the full
N >= 200 sweep is marked ``slow`` (run via ``scripts/check.sh chaos``
or ``test-all``).

Two contracts under fuzz:

* **Salvage never raises.**  Whatever the injectors did, salvage-mode
  reconstruction returns a ``DistributedTrace`` with a degradation
  summary, and the renderer handles it.
* **Strict raises on structural damage, with a useful message.**
  "Structural" means damage strict verification actually checks:
  clobbered header words, truncated buffers, torn/corrupt archives,
  missing machines.  (A mid-data bit flip is *not* structural — the
  forward scan simply stops at the first non-record word, by design.)
"""

import random

import pytest

from repro.chaos import SCENARIOS, build_base, copy_snap, run_scenario
from repro.chaos.inject import (
    clobber_header,
    corrupt_archive,
    drop_sync_records,
    duplicate_sync_records,
    flip_bits,
    skew_clock,
    tear_archive,
    truncate_buffer,
    zero_words,
)
from repro.reconstruct import Reconstructor, RecoveryError, render_distributed
from repro.runtime.archive import (
    ArchiveError,
    compress_snap,
    decompress_snap,
    salvage_decompress,
)


@pytest.fixture(scope="module")
def base():
    snaps, mapfiles, _ = build_base()
    return snaps, mapfiles


# ----------------------------------------------------------------------
# Damage classes
# ----------------------------------------------------------------------
def _damage_snaps(snaps, rng):
    """Randomly compose word-level injectors over copies of ``snaps``.

    Returns (damaged snaps, ground-truth notes).
    """
    damaged = [copy_snap(s) for s in snaps]
    notes = []
    injectors = [
        lambda s: flip_bits(s, rng, flips=rng.randrange(1, 12)),
        lambda s: zero_words(s, rng, runs=rng.randrange(1, 3)),
        lambda s: clobber_header(s, rng, words=rng.randrange(1, 3)),
        lambda s: truncate_buffer(s, rng),
        lambda s: drop_sync_records(s, rng, count=rng.randrange(1, 3)),
        lambda s: duplicate_sync_records(s, rng),
        lambda s: skew_clock(s, rng.randrange(-(1 << 34), 1 << 34)),
    ]
    for _ in range(rng.randrange(1, 4)):
        victim = rng.choice(damaged)
        notes += rng.choice(injectors)(victim)
    if rng.random() < 0.3:  # sometimes a machine vanishes too
        idx = rng.randrange(len(damaged))
        notes.append(f"machine {damaged[idx].machine_name} dropped")
        damaged[idx] = None
    return damaged, notes


def _fuzz_one(snaps, mapfiles, seed):
    rng = random.Random(seed)
    damaged, notes = _damage_snaps(snaps, rng)
    trace = Reconstructor(mapfiles).reconstruct_distributed(
        damaged, strict=False, expected_machines=None
    )
    assert trace.degradation is not None
    assert isinstance(render_distributed(trace), str)
    # Ground truth was produced, even if this particular damage landed
    # somewhere reconstruction tolerates silently.
    assert notes


def _fuzz_archive_one(snaps, seed):
    rng = random.Random(seed)
    data = compress_snap(rng.choice(snaps))
    if rng.random() < 0.5:
        bad, _ = tear_archive(data, rng)
    else:
        bad, _ = corrupt_archive(data, rng, flips=rng.randrange(1, 6))
    if bad == data:  # corrupt_archive can (rarely) cancel itself out
        return
    # Salvage never raises; strict always does on a damaged container.
    snap, notes = salvage_decompress(bad)
    assert snap is not None or notes
    with pytest.raises(ArchiveError) as excinfo:
        decompress_snap(bad)
    assert str(excinfo.value)  # a message, not a bare raise


# ----------------------------------------------------------------------
# Fast subset (default lane)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(25))
def test_fuzz_salvage_never_raises_fast(base, seed):
    snaps, mapfiles = base
    _fuzz_one(snaps, mapfiles, seed)


@pytest.mark.parametrize("seed", range(15))
def test_fuzz_archive_fast(base, seed):
    snaps, _ = base
    _fuzz_archive_one(snaps, seed)


# ----------------------------------------------------------------------
# Full sweep (slow lane): N >= 200 distinct damage cases
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25, 185))
def test_fuzz_salvage_never_raises(base, seed):
    snaps, mapfiles = base
    _fuzz_one(snaps, mapfiles, seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(15, 95))
def test_fuzz_archive(base, seed):
    snaps, _ = base
    _fuzz_archive_one(snaps, seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fuzz_every_scenario_every_seed(name, seed):
    trace = run_scenario(name, seed=seed).reconstruct(strict=False)
    assert trace.degradation is not None
    assert isinstance(render_distributed(trace), str)


# ----------------------------------------------------------------------
# Nondeterminism-log damage: replay refuses with a typed error
# ----------------------------------------------------------------------
CRASHER = """
int main() {
    int i;
    int n;
    n = 7;
    for (i = 0; i < 5; i = i + 1) {
        n = n - 1;
    }
    return 100 / (n - 2);
}
"""


@pytest.fixture(scope="module", params=[1, 2], ids=["ndlog-v1", "ndlog-v2"])
def recorded_snap(request):
    """One recorded crash snap per ndlog wire format (v1 and v2)."""
    from repro.api import TraceSession
    from repro.runtime import RuntimeConfig, SnapPolicy
    from repro.runtime.sync import reset_runtime_ids

    reset_runtime_ids()
    session = TraceSession(
        process_name="crasher",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            record_replay=True,
            ndlog_version=request.param,
        ),
    )
    session.add_minic(CRASHER, name="crasher", file_name="crasher.c")
    run = session.run(max_cycles=2_000_000)
    assert run.snap is not None and run.snap.replayable == "full"
    return run.snap


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_ndlog_damage_is_typed(recorded_snap, seed):
    """Whatever damage_ndlog did, replay fails with ReplayUnavailable
    naming the hurt segment — never a crash or a silent divergence.
    Runs against both wire formats: v1 damage tears the JSON event
    list, v2 damage corrupts the packed byte columns."""
    from repro.chaos.inject import damage_ndlog
    from repro.replay import ReplayEngine, ReplayUnavailable

    rng = random.Random(seed)
    bad = copy_snap(recorded_snap)
    notes = damage_ndlog(bad, rng)
    assert notes and "ReplayUnavailable" in notes[0]
    with pytest.raises(ReplayUnavailable) as excinfo:
        ReplayEngine(bad).run_to_fault()
    assert excinfo.value.segment
    assert f"'{excinfo.value.segment}'" in notes[0]
    # Damage stayed on the copy: the pristine snap still replays.
    stop = ReplayEngine(recorded_snap).run_to_fault()
    assert stop["reason"] == "fault"


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(12, 40))
def test_fuzz_ndlog_damage_is_typed_slow(recorded_snap, seed):
    """Wider seed sweep over the same contract (slow lane)."""
    test_fuzz_ndlog_damage_is_typed(recorded_snap, seed)


# ----------------------------------------------------------------------
# Strict mode raises usefully on structural damage
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_fuzz_strict_raises_on_structural_damage(base, seed):
    rng = random.Random(seed)
    snaps, mapfiles = base
    bad = copy_snap(rng.choice(snaps))
    structural = rng.choice((clobber_header, truncate_buffer))
    assert structural(bad, rng)
    with pytest.raises(RecoveryError) as excinfo:
        Reconstructor(mapfiles).reconstruct(bad, strict=True)
    assert "buffer" in str(excinfo.value)
