"""Unit tests for the fault injectors themselves."""

import random

import pytest

from repro.chaos import (
    build_base,
    clobber_header,
    copy_snap,
    corrupt_archive,
    drop_machine,
    drop_sync_records,
    duplicate_sync_records,
    flip_bits,
    tear_archive,
    truncate_buffer,
    zero_words,
)
from repro.chaos.scenarios import run_scenario
from repro.runtime.archive import compress_snap


@pytest.fixture(scope="module")
def base():
    snaps, mapfiles, _ = build_base()
    return snaps, mapfiles


def test_copy_snap_is_independent(base):
    snaps, _ = base
    clone = copy_snap(snaps[0])
    which = next(
        i for i, b in enumerate(clone.buffers) if len(b.words) > 12
    )
    clone.buffers[which].words[12] ^= 0xFFFF
    assert (
        clone.buffers[which].words[12]
        != snaps[0].buffers[which].words[12]
    )


def test_flip_bits_changes_exactly_named_words(base):
    snaps, _ = base
    original = snaps[0]
    clone = copy_snap(original)
    notes = flip_bits(clone, random.Random(7), flips=5)
    assert len(notes) == 5
    changed = sum(
        1
        for before, after in zip(original.buffers, clone.buffers)
        for w1, w2 in zip(before.words, after.words)
        if w1 != w2
    )
    # Two flips may hit the same word (cancelling or combining), so
    # changed <= flips; but something must differ for 5 flips.
    assert 1 <= changed <= 5


def test_zero_words_zeroes_a_run(base):
    snaps, _ = base
    clone = copy_snap(snaps[0])
    notes = zero_words(clone, random.Random(3), runs=1, run_len=8)
    assert len(notes) == 1 and "zeroed words" in notes[0]


def test_clobber_header_targets_verified_words(base):
    snaps, _ = base
    clone = copy_snap(snaps[0])
    notes = clobber_header(clone, random.Random(5), words=3)
    assert notes
    for note in notes:
        assert "header word 0" in note or "header word 4" in note


def test_truncate_buffer_shortens(base):
    snaps, _ = base
    clone = copy_snap(snaps[0])
    before = [len(b.words) for b in clone.buffers]
    truncate_buffer(clone, random.Random(11))
    after = [len(b.words) for b in clone.buffers]
    assert after != before
    assert sum(after) < sum(before)


def test_drop_sync_records_zeroes_sync_evidence(base):
    snaps, _ = base
    # The frontend snap (index 1) carries SYNC records for both RPCs.
    clone = copy_snap(snaps[1])
    notes = drop_sync_records(clone, random.Random(2), count=2)
    assert notes, "base run must contain SYNC records to drop"
    for note in notes:
        assert "dropped SYNC record" in note


def test_duplicate_sync_records(base):
    snaps, _ = base
    clone = copy_snap(snaps[1])
    notes = duplicate_sync_records(clone, random.Random(2), count=1)
    assert len(notes) == 1


def test_drop_machine_removes_one(base):
    snaps, _ = base
    survivors, dropped = drop_machine(list(snaps), random.Random(0))
    assert len(survivors) == len(snaps) - 1
    assert dropped not in {s.machine_name for s in survivors}


def test_tear_archive_truncates(base):
    snaps, _ = base
    data = compress_snap(snaps[0])
    torn, note = tear_archive(data, random.Random(1))
    assert len(torn) < len(data)
    assert "torn" in note


def test_corrupt_archive_flips_bytes(base):
    snaps, _ = base
    data = compress_snap(snaps[0])
    bad, notes = corrupt_archive(data, random.Random(1), flips=3)
    assert len(bad) == len(data)
    assert bad != data
    assert len(notes) == 3


def test_scenarios_are_reproducible():
    a = run_scenario("corrupt-buffer", seed=42)
    b = run_scenario("corrupt-buffer", seed=42)
    assert a.injected == b.injected
    assert [s.to_dict() for s in a.snaps] == [s.to_dict() for s in b.snaps]


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        run_scenario("does-not-exist")
