"""Salvage-mode reconstruction under every chaos scenario.

The acceptance bar (ISSUE 2): every scenario — corrupt buffer,
truncated archive, missing machine snap, dropped SYNC, abrupt kill —
reconstructs in salvage mode without an uncaught exception, the
degradation summary names each loss, and strict mode keeps its
fail-fast contract on structurally damaged evidence.
"""

import random

import pytest

from repro.chaos import SCENARIOS, build_base, copy_snap, run_scenario
from repro.chaos.inject import clobber_header, truncate_buffer
from repro.reconstruct import (
    Reconstructor,
    RecoveryError,
    render_distributed,
)
from repro.runtime.archive import ArchiveError, compress_snap, decompress_snap


@pytest.fixture(scope="module")
def base():
    snaps, mapfiles, _ = build_base()
    return snaps, mapfiles


# ----------------------------------------------------------------------
# Every scenario survives salvage-mode reconstruction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_salvages_without_exception(name):
    result = run_scenario(name, seed=7)
    trace = result.reconstruct(strict=False)
    assert trace.degradation is not None
    # The reconstruction kept every machine that had evidence.
    assert len(trace.processes) >= 1
    # Rendering the degraded master trace must not raise either.
    assert render_distributed(trace)


def test_corrupt_buffer_names_the_loss():
    result = run_scenario("corrupt-buffer", seed=7)
    trace = result.reconstruct()
    summary = trace.degradation
    assert summary.degraded
    text = summary.summary()
    assert "words skipped" in text or "corrupt" in text


def test_torn_header_names_buffer_and_strict_raises():
    result = run_scenario("torn-header", seed=7)
    trace = result.reconstruct()
    assert trace.degradation.degraded
    assert any("buffer" in loss for loss in trace.degradation.losses)
    with pytest.raises(RecoveryError):
        result.reconstruct(strict=True)


def test_truncated_buffer_strict_raises_salvage_reports():
    result = run_scenario("truncated-buffer", seed=3)
    with pytest.raises(RecoveryError, match="words"):
        result.reconstruct(strict=True)
    trace = result.reconstruct()
    assert any("skipped" in loss for loss in trace.degradation.losses)


def test_truncated_archive_degrades_not_crashes():
    result = run_scenario("truncated-archive", seed=7)
    trace = result.reconstruct()
    summary = trace.degradation
    assert summary.degraded
    # Either the machine is wholly missing or its losses are described.
    named = summary.missing_machines or summary.losses
    assert named


def test_missing_machine_is_reported():
    result = run_scenario("missing-machine", seed=7)
    trace = result.reconstruct()
    assert trace.degradation.missing_machines
    missing = trace.degradation.missing_machines[0]
    assert missing not in {p.machine_name for p in trace.processes}
    assert "no snap recovered" in trace.degradation.summary()


def test_dropped_sync_keeps_logical_threads_and_notes_gap():
    result = run_scenario("dropped-sync", seed=7)
    assert result.injected, "scenario must actually drop SYNC records"
    trace = result.reconstruct()
    # Reconstruction still fuses what evidence remains...
    assert trace.processes
    # ...and the summary names the broken chain or skipped words.
    assert trace.degradation.degraded


def test_abrupt_kill_recovers_history():
    result = run_scenario("abrupt-kill", seed=7)
    trace = result.reconstruct()
    # The killed frontend still contributes recovered line history —
    # the paper's headline kill -9 claim.
    frontend = [p for p in trace.processes if p.process_name == "frontend"]
    assert frontend
    assert any(t.line_steps() for t in frontend[0].threads)


def test_clock_skew_still_stitches():
    result = run_scenario("clock-skew", seed=7)
    trace = result.reconstruct()
    assert trace.logical_threads  # SYNC sequencing beats skew (§5.2)


def test_duplicated_sync_deduped():
    result = run_scenario("duplicated-sync", seed=7)
    trace = result.reconstruct()
    losses = " ".join(trace.degradation.losses)
    assert "duplicated SYNC" in losses or "skipped" in losses


# ----------------------------------------------------------------------
# Strict mode's contract
# ----------------------------------------------------------------------
def test_strict_distributed_rejects_none_snaps(base):
    snaps, mapfiles = base
    with pytest.raises(ValueError, match="salvage"):
        Reconstructor(mapfiles).reconstruct_distributed(
            [snaps[0], None], strict=True
        )


def test_strict_single_snap_raises_on_clobbered_header(base):
    snaps, mapfiles = base
    bad = copy_snap(snaps[0])
    clobber_header(bad, random.Random(1))
    with pytest.raises(RecoveryError):
        Reconstructor(mapfiles).reconstruct(bad)


def test_strict_single_snap_raises_on_truncation(base):
    snaps, mapfiles = base
    bad = copy_snap(snaps[0])
    truncate_buffer(bad, random.Random(1), keep_fraction=0.5)
    with pytest.raises(RecoveryError):
        Reconstructor(mapfiles).reconstruct(bad)


def test_strict_archive_raises_on_any_damage(base):
    snaps, _ = base
    data = compress_snap(snaps[0])
    with pytest.raises(ArchiveError):
        decompress_snap(data[: len(data) - 4])
    corrupted = bytearray(data)
    corrupted[len(corrupted) // 2] ^= 0x40
    with pytest.raises(ArchiveError):
        decompress_snap(bytes(corrupted))


# ----------------------------------------------------------------------
# Salvage on undamaged evidence is lossless
# ----------------------------------------------------------------------
def test_salvage_equals_strict_on_clean_snaps(base):
    snaps, mapfiles = base
    recon = Reconstructor(mapfiles)
    for snap in snaps:
        strict = recon.reconstruct(snap)
        salvaged = recon.reconstruct(snap, strict=False)
        assert not salvaged.degraded
        assert len(strict.threads) == len(salvaged.threads)
        for a, b in zip(strict.threads, salvaged.threads):
            assert a.steps == b.steps


def test_salvage_distributed_on_clean_run_is_full(base):
    snaps, mapfiles = base
    trace = Reconstructor(mapfiles).reconstruct_distributed(
        list(snaps), strict=False, expected_machines=None
    )
    assert trace.degradation.level == "full"
    assert trace.logical_threads
