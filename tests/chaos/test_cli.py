"""``tbtrace view`` on damaged artifacts: diagnosis, not tracebacks."""

import json
import random

import pytest

from repro.chaos.inject import clobber_header, copy_snap
from repro.chaos.scenarios import build_base
from repro.runtime.archive import compress_snap
from repro.tools.tb import main

CRASHY = """
int div_by(int d) {
    return 100 / d;
}
int main() {
    print_int(div_by(0));
    return 0;
}
"""


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    source = tmp / "crashy.c"
    source.write_text(CRASHY)
    snap = tmp / "crash.json"
    mapfile = tmp / "app.map.json"
    main(["run", str(source), "--save-snap", str(snap),
          "--save-mapfile", str(mapfile)])
    return tmp, snap, mapfile


def test_view_missing_snap_one_line_error(artifacts, capsys):
    tmp, _, mapfile = artifacts
    rc = main(["view", str(tmp / "nope.json"), str(mapfile)])
    captured = capsys.readouterr()
    assert rc == 1
    assert captured.err.startswith("tbtrace: error: cannot load snap")
    assert "Traceback" not in captured.err


def test_view_malformed_json_one_line_error(artifacts, capsys):
    tmp, _, mapfile = artifacts
    bad = tmp / "malformed.json"
    bad.write_text(json.dumps({"not": "a snap"}))
    rc = main(["view", str(bad), str(mapfile)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "tbtrace: error:" in captured.err
    assert captured.err.count("\n") == 1  # exactly one line


def test_view_damaged_snap_suggests_salvage(artifacts, capsys):
    tmp, snap, mapfile = artifacts
    from repro.runtime.snap import SnapFile

    damaged = SnapFile.load(str(snap))
    clobber_header(damaged, random.Random(0))
    bad = tmp / "damaged.json"
    damaged.save(str(bad))
    rc = main(["view", str(bad), str(mapfile)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "re-run with --salvage" in captured.err


def test_view_damaged_snap_salvage_recovers(artifacts, capsys):
    tmp, _, mapfile = artifacts
    rc = main(["view", str(tmp / "damaged.json"), str(mapfile),
               "--salvage"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "degradation:" in captured.out


def test_view_torn_archive_strict_vs_salvage(capsys, tmp_path):
    snaps, mapfiles, _ = build_base()
    mapfile = tmp_path / "frontend.map.json"
    mapfiles[1].save(str(mapfile))
    data = compress_snap(copy_snap(snaps[1]))
    torn = data[: int(len(data) * 0.9)]  # late tear: body recoverable
    archive = tmp_path / "torn.tbsz"
    archive.write_bytes(torn)

    rc = main(["view", str(archive), str(mapfile)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "tbtrace: error:" in captured.err

    rc = main(["view", str(archive), str(mapfile), "--salvage"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "note:" in captured.out
