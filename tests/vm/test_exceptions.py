"""Exception dispatch: faults, handler search, unwinding, hooks."""

from repro.isa import assemble
from repro.vm import ExcCode, ExitState, Machine, ProcessHooks


def build(src: str):
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(assemble(src))
    process.start()
    return machine, process


def test_divide_by_zero_uncaught_kills_process():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          li r1, 1
          li r2, 0
          div r0, r1, r2
          halt
        .endfunc
        """
    )
    machine.run()
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.DIVIDE_BY_ZERO


def test_access_violation_on_unmapped_read():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          li r1, 9
          shli r1, r1, 24
          ldw r0, r1, 0
          halt
        .endfunc
        """
    )
    machine.run()
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.ACCESS_VIOLATION


def test_write_to_rodata_faults():
    """The Figure 6 bug shape: a store through a pointer to const data."""
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          la r1, name
          li r0, 88
          stw r0, r1, 0
          halt
        .endfunc
        .rodata
        name: .str "Rex"
        """
    )
    machine.run()
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.ACCESS_VIOLATION


def test_local_handler_catches_fault():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
        t0:
          li r1, 1
          li r2, 0
          div r0, r1, r2
        t1:
          halt
        catch:
          sys 1              ; prints the exception code
          li r0, 0
          halt
        .handler t0 t1 catch
        .endfunc
        """
    )
    machine.run()
    assert process.exit_state == ExitState.EXITED
    assert process.output == [str(ExcCode.DIVIDE_BY_ZERO)]


def test_handler_code_filter_respected():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
        t0:
          li r1, 100
          throw r1
        t1:
          halt
        wrongcatch:
          halt
        .handler t0 t1 wrongcatch 55
        .endfunc
        """
    )
    machine.run()
    # Handler only catches code 55; THROW raised 100 -> process dies.
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == 100


def test_unwind_through_callee_to_caller_handler():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
        t0:
          call danger
        t1:
          halt
        catch:
          sys 1
          li r0, 0
          halt
        .handler t0 t1 catch
        .endfunc
        .func danger
          li r1, 0
          li r2, 5
          div r0, r2, r1
          ret
        .endfunc
        """
    )
    machine.run()
    assert process.exit_state == ExitState.EXITED
    assert process.output == [str(ExcCode.DIVIDE_BY_ZERO)]


def test_unwind_restores_stack_pointer():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
        .frame 2
          addi sp, sp, -2    ; prologue
        t0:
          push r0            ; clutter the stack before the fault
          push r0
          call danger
        t1:
          halt
        catch:
          addi sp, sp, 2     ; epilogue must see the prologue sp
          li r0, 0
          halt
        .handler t0 t1 catch
        .endfunc
        .func danger
          li r1, 7
          throw r1
          ret
        .endfunc
        """
    )
    machine.run()
    assert process.exit_state == ExitState.EXITED
    # After the handler's epilogue, sp is back at the entry value and the
    # trampoline return address is intact: process exited normally.


def test_first_chance_hook_sees_fault_before_handler():
    events = []

    class Watcher(ProcessHooks):
        def first_chance(self, thread, fault):
            events.append(("first", fault.code))

        def unhandled(self, thread, fault):
            events.append(("unhandled", fault.code))

    machine, process = build(
        """
        .module t
        .entry main
        .func main
        t0:
          li r1, 200
          throw r1
        t1:
          halt
        catch:
          li r0, 0
          halt
        .handler t0 t1 catch
        .endfunc
        """
    )
    process.hooks.add(Watcher())
    machine.run()
    assert events == [("first", 200)]
    assert process.exit_state == ExitState.EXITED


def test_unhandled_hook_fires_once():
    events = []

    class Watcher(ProcessHooks):
        def unhandled(self, thread, fault):
            events.append(fault.code)

    machine, process = build(
        """
        .module t
        .entry main
        .func main
          li r1, 300
          throw r1
        .endfunc
        """
    )
    process.hooks.add(Watcher())
    machine.run()
    assert events == [300]


def test_nested_handlers_prefer_innermost():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
        o0:
          call inner
        o1:
          halt
        outercatch:
          li r0, 2
          sys 1
          li r0, 0
          halt
        .handler o0 o1 outercatch
        .endfunc
        .func inner
        i0:
          li r1, 150
          throw r1
        i1:
          ret
        innercatch:
          li r0, 1
          sys 1
          li r0, 0
          halt
        .handler i0 i1 innercatch
        .endfunc
        """
    )
    machine.run()
    assert process.output == ["1"]


def test_sleep_negative_raises_illegal_argument():
    """The Oracle bug from §6.1: sleep() with a negative argument."""
    machine, process = build(
        """
        .module t
        .entry main
        .func main
        t0:
          li r0, -5
          sys 8
        t1:
          halt
        catch:
          sys 1
          li r0, 0
          halt
        .handler t0 t1 catch
        .endfunc
        """
    )
    machine.run()
    assert process.output == [str(ExcCode.ILLEGAL_ARGUMENT)]
