"""Memory segments, permissions, and the module loader."""

import pytest

from repro.isa import assemble
from repro.vm import Machine, MappedFile, Memory, Segment, VMError, VMFault
from repro.vm.memory import WORD_MASK


def test_segment_mapping_and_lookup():
    memory = Memory()
    seg = memory.map_segment(Segment(base=100, size=10, name="a"))
    assert memory.segment_at(100) is seg
    assert memory.segment_at(109) is seg
    assert memory.segment_at(110) is None
    assert memory.segment_at(99) is None


def test_overlapping_segments_rejected():
    memory = Memory()
    memory.map_segment(Segment(base=100, size=10, name="a"))
    with pytest.raises(VMError, match="overlaps"):
        memory.map_segment(Segment(base=105, size=10, name="b"))


def test_load_store_and_masking():
    memory = Memory()
    memory.map_segment(Segment(base=0, size=4, name="a"))
    memory.store(2, -1)
    assert memory.load(2) == WORD_MASK


def test_permissions_enforced():
    memory = Memory()
    memory.map_segment(Segment(base=0, size=4, name="ro", writable=False))
    with pytest.raises(VMFault):
        memory.store(1, 5)
    memory.map_segment(Segment(base=10, size=4, name="noexec"))
    with pytest.raises(VMFault):
        memory.fetch(10)


def test_or_word():
    memory = Memory()
    memory.map_segment(Segment(base=0, size=1, name="a"))
    memory.store(0, 0b100)
    memory.or_word(0, 0b011)
    assert memory.load(0) == 0b111


def test_read_cstr():
    memory = Memory()
    memory.map_segment(Segment(base=0, size=8, name="a"))
    for i, ch in enumerate("hey"):
        memory.store(i, ord(ch))
    assert memory.read_cstr(0) == "hey"


def test_mapped_file_snapshot_is_independent():
    mapped = MappedFile.zeroed("m", 4)
    snap = mapped.snapshot()
    mapped.words[0] = 9
    assert snap[0] == 0


def test_unmap_frees_address_range():
    memory = Memory()
    seg = memory.map_segment(Segment(base=0, size=4, name="a"))
    memory.unmap(seg)
    assert memory.segment_at(0) is None
    memory.map_segment(Segment(base=0, size=4, name="b"))  # no overlap error


# ----------------------------------------------------------------------
# Loader
# ----------------------------------------------------------------------
LIB = """
.module lib
.export fn
.func fn
  li r0, 9
  ret
.endfunc
.data
cell: .word 42
"""


def test_loader_places_sections_and_resolves_symbols():
    machine = Machine()
    process = machine.create_process("t")
    loaded = process.load_module(assemble(LIB))
    assert loaded.contains_code(loaded.code_base)
    assert loaded.symbol_addr("cell") == loaded.data_base
    assert loaded.export_addr("fn") == loaded.code_base


def test_loader_relocations_patched():
    machine = Machine()
    process = machine.create_process("t")
    src = """
.module t
.entry main
.func main
  la r0, cell
  ldw r0, r0, 0
  sys 1
  halt
.endfunc
.data
cell: .word 123
"""
    process.load_module(assemble(src))
    process.start()
    machine.run()
    assert process.output == ["123"]


def test_unresolved_import_raises():
    machine = Machine()
    process = machine.create_process("t")
    src = ".module t\n.import ghost\n.func main\n callx ghost\n.endfunc"
    with pytest.raises(VMError, match="unresolved import"):
        process.load_module(assemble(src))


def test_unload_then_reload():
    machine = Machine()
    process = machine.create_process("t")
    module = assemble(LIB)
    loaded = process.load_module(module)
    base1 = loaded.code_base
    process.unload_module(loaded)
    assert process.loader.find_export("fn") is None
    loaded2 = process.load_module(module)
    assert loaded2.code_base != base1  # fresh placement
    assert process.loader.find_export("fn") == loaded2.export_addr("fn")


def test_module_object_not_mutated_by_load():
    machine = Machine()
    process = machine.create_process("t")
    src = """
.module t
.func main
  la r0, cell
  halt
.endfunc
.data
cell: .word 7
"""
    module = assemble(src)
    code_before = list(module.code)
    process.load_module(module)
    assert module.code == code_before  # relocation patched a copy


def test_find_code_across_modules():
    machine = Machine()
    process = machine.create_process("t")
    la = process.load_module(assemble(LIB))
    lb = process.load_module(assemble(LIB.replace("lib", "lib2").replace("fn", "gn")))
    assert process.loader.find_code(la.code_base) is la
    assert process.loader.find_code(lb.code_base) is lb
    assert process.loader.module_named("lib2") is lb
