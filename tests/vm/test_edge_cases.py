"""VM edge cases: stack limits, killed RPC servers, scheduler corners."""

from repro import TraceSession
from repro.isa import assemble
from repro.lang.minic import compile_source
from repro.runtime import RuntimeConfig, ServiceProcess, SnapPolicy
from repro.vm import ExcCode, ExitState, Machine, Signal, ThreadState


def test_runaway_recursion_faults_not_hangs():
    """Stack exhaustion becomes an access violation at the guard edge."""
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(
        compile_source("int f(int n) { return f(n + 1); }\n"
                       "int main() { return f(0); }", "t")
    )
    process.start()
    status = machine.run(max_cycles=10_000_000)
    assert status == "done"
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.ACCESS_VIOLATION


def test_kill_while_serving_rpc_hangs_caller_and_service_detects():
    """The server dies -9 mid-request: the caller hangs; the hang path
    (external snap utility) is how the paper handles it."""
    machine = Machine()

    server = machine.create_process("server")
    server.load_module(
        assemble(
            """
            .module srv
            .export handle
            .func handle
            spin:
              br spin
            .endfunc
            """
        )
    )
    server.rpc_services[9] = "handle"

    client = machine.create_process("client")
    from repro.instrument import instrument_module
    from repro.runtime import TraceBackRuntime

    service = ServiceProcess()
    tb = TraceBackRuntime(
        client,
        RuntimeConfig(policy=SnapPolicy.parse("snap on hang")),
        service=service,
    )
    result = instrument_module(
        compile_source(
            """
int buf[1];
int main() {
    int status;
    status = rpc_call(9, buf, 1, buf, 0);
    print_int(status);
    return 0;
}
""",
            "client",
        )
    )
    client.load_module(result.module)
    client.start("client")
    machine.run(max_cycles=300_000)
    server.post_signal(Signal.KILL)
    status = machine.run(max_cycles=600_000)
    assert status == "stalled"
    hung = service.poll_status()
    assert tb in hung
    snaps = service.check_hangs()
    assert snaps and snaps[0].reason == "hang"
    # The caller's last line in the trace is the rpc_call.
    from repro.reconstruct import Reconstructor

    trace = Reconstructor([result.mapfile]).reconstruct(snaps[0])
    last = trace.threads[-1].last_line()
    assert last is not None and last.line == 5  # the rpc_call line


def test_many_short_lived_threads():
    session = TraceSession(
        runtime_config=RuntimeConfig(main_buffers=2, max_buffers=3)
    )
    session.add_minic(
        """
int hits[1];
int tick(int arg) {
    hits[0] = hits[0] + 1;
    exit_thread(0);
    return 0;
}
int main() {
    int i;
    for (i = 0; i < 20; i = i + 1) {
        thread_create(tick, i);
        sleep(3000);
    }
    sleep(50000);
    print_int(hits[0]);
    return 0;
}
""",
        name="app",
    )
    run = session.run()
    assert run.output == ["20"]
    assert run.runtime.stats.buffers_reused >= 10


def test_scheduler_interleaves_processes_fairly():
    machine = Machine()
    outputs = []
    for name in ("p1", "p2"):
        process = machine.create_process(name)
        process.load_module(
            compile_source(
                "int main() { int i; for (i = 0; i < 500; i = i + 1) "
                "{ yield(); } print_int(1); return 0; }",
                name,
            )
        )
        process.start()
        outputs.append(process)
    assert machine.run(max_cycles=10_000_000) == "done"
    for process in outputs:
        assert process.output == ["1"]


def test_guest_cannot_write_code_segment():
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(
        assemble(
            """
            .module t
            .entry main
            .func main
              la r1, main
              li r0, 0
              stw r0, r1, 0     ; self-modifying write: AV
              halt
            .endfunc
            """
        )
    )
    process.start()
    machine.run(max_cycles=10_000)
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.ACCESS_VIOLATION


def test_blocked_thread_states_visible():
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(
        compile_source(
            "int main() { sleep(100000); return 0; }", "t"
        )
    )
    process.start()
    machine.run(max_cycles=2_000)
    thread = process.threads[0]
    assert thread.state is ThreadState.BLOCKED
    assert thread.block_reason == "sleep"
    assert thread.wake_cycle is not None
