"""Interpreter semantics: ALU, memory, control flow, calls."""

import pytest

from repro.isa import assemble
from repro.vm import ExitState, Machine


def run_source(src: str) -> tuple:
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(assemble(src))
    process.start()
    status = machine.run(max_cycles=2_000_000)
    return machine, process, status


def run_and_output(src: str) -> list[str]:
    _, process, status = run_source(src)
    assert status == "done"
    assert process.exit_state == ExitState.EXITED
    return process.output


def wrap_main(body: str) -> str:
    return f".module t\n.entry main\n.func main\n{body}\n.endfunc\n"


def test_arithmetic_and_print():
    out = run_and_output(
        wrap_main(
            """
            li r1, 6
            li r2, 7
            mul r0, r1, r2
            sys 1
            halt
            """
        )
    )
    assert out == ["42"]


def test_signed_division_truncates_toward_zero():
    out = run_and_output(
        wrap_main(
            """
            li r1, -7
            li r2, 2
            div r0, r1, r2
            sys 1
            halt
            """
        )
    )
    assert out == ["-3"]


def test_comparisons():
    out = run_and_output(
        wrap_main(
            """
            li r1, -1
            li r2, 1
            slt r0, r1, r2
            sys 1
            sle r0, r2, r1
            sys 1
            seq r0, r1, r1
            sys 1
            halt
            """
        )
    )
    assert out == ["1", "0", "1"]


def test_loop_sums_to_expected_value():
    out = run_and_output(
        wrap_main(
            """
            li r0, 0
            li r1, 100
        loop:
            add r0, r0, r1
            addi r1, r1, -1
            bnz r1, loop
            sys 1
            halt
            """
        )
    )
    assert out == ["5050"]


def test_global_data_load_store():
    out = run_and_output(
        """
        .module t
        .entry main
        .func main
          la r1, cell
          ldw r0, r1, 0
          addi r0, r0, 5
          stw r0, r1, 0
          ldw r0, r1, 0
          sys 1
          halt
        .endfunc
        .data
        cell: .word 37
        """
    )
    assert out == ["42"]


def test_recursive_call_fib():
    out = run_and_output(
        """
        .module t
        .entry main
        .func main
          li r0, 10
          call fib
          sys 1
          halt
        .endfunc
        .func fib
          li r1, 2
          blt r0, r1, base
          push r0
          addi r0, r0, -1
          call fib
          pop r1
          push r0
          mov r0, r1
          addi r0, r0, -2
          call fib
          pop r1
          add r0, r0, r1
          ret
        base:
          ret
        .endfunc
        """
    )
    assert out == ["55"]


def test_jump_table_multiway_branch():
    out = run_and_output(
        """
        .module t
        .entry main
        .func main
          li r0, 1           ; select case 1
          la r1, table
          jtab r0, r1
        case0:
          li r0, 100
          br done
        case1:
          li r0, 200
          br done
        case2:
          li r0, 300
        done:
          sys 1
          halt
        .endfunc
        .rodata
        table: .addr case0 case1 case2
        """
    )
    assert out == ["200"]


def test_indirect_call_through_register():
    out = run_and_output(
        """
        .module t
        .entry main
        .func main
          la r1, callee
          callr r1
          sys 1
          halt
        .endfunc
        .func callee
          li r0, 77
          ret
        .endfunc
        """
    )
    assert out == ["77"]


def test_cross_module_call():
    machine = Machine()
    process = machine.create_process("t")
    lib = assemble(
        """
        .module lib
        .export triple
        .func triple
          li r1, 3
          mul r0, r0, r1
          ret
        .endfunc
        """
    )
    app = assemble(
        """
        .module app
        .entry main
        .import triple
        .func main
          li r0, 14
          callx triple
          sys 1
          halt
        .endfunc
        """
    )
    process.load_module(lib)
    process.load_module(app)
    process.start("app")
    assert machine.run() == "done"
    assert process.output == ["42"]


def test_string_output():
    out = run_and_output(
        """
        .module t
        .entry main
        .func main
          la r0, msg
          sys 2
          halt
        .endfunc
        .rodata
        msg: .str "hello"
        """
    )
    assert out == ["hello"]


def test_tls_slots_are_per_thread_storage():
    out = run_and_output(
        wrap_main(
            """
            li r0, 99
            tlsst r0, 5
            li r0, 0
            tlsld r0, 5
            sys 1
            halt
            """
        )
    )
    assert out == ["99"]


def test_exit_code_propagates():
    _, process, _ = run_source(wrap_main("li r0, 3\n halt"))
    assert process.exit_code == 3


def test_cycle_limit_reported():
    machine, _, status = run_source(wrap_main("spin: br spin"))
    assert status == "limit"


def test_probe_support_instructions():
    """ORM, STDAG, and BSENT behave as the probe sequences require."""
    out = run_and_output(
        """
        .module t
        .entry main
        .func main
          la r1, buf
          stdag r1, 5        ; mem[r1] = 0x80000000 | (5 << 11)
          orm r1, 3          ; set path bits 0 and 1
          ldw r0, r1, 0
          shri r0, r0, 11
          andi r0, r0, 0xff
          sys 1              ; dag id 5
          ldw r0, r1, 0
          andi r0, r0, 0x7ff
          sys 1              ; path bits 3
          la r1, sent
          bsent r1, yes
          li r0, 0
          br out
        yes:
          li r0, 1
        out:
          sys 1
          halt
        .endfunc
        .data
        buf:  .word 0
        sent: .word 0xFFFFFFFF
        """
    )
    assert out == ["5", "3", "1"]
