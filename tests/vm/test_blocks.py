"""Tier-3 block engine specifics: engine selection, lazy compilation,
slice-boundary exactness, and recompilation after code rewriting.

Full bit-identity with the reference interpreter is covered by the
differential suite (``test_differential.py`` runs every engine in
``ENGINES``); these tests pin the machinery around the compiled units.
"""

from __future__ import annotations

import pytest

from repro.lang.minic import compile_source
from repro.vm import ENGINES, EngineSelectionError, Machine
from repro.vm.machine import ENGINE_ENV_VAR

SOURCE = """
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 200; i = i + 1) {
        total = total + i * 3;
    }
    print_int(total);
    return 0;
}
"""


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------


def test_engines_tuple_lists_all_tiers():
    assert ENGINES == ("fast", "block", "reference")


def test_unknown_engine_argument_raises_typed_error():
    with pytest.raises(EngineSelectionError) as excinfo:
        Machine(engine="turbo")
    err = excinfo.value
    assert err.engine == "turbo"
    assert err.valid == ENGINES
    # The message names the bad value, its source, and every valid tier.
    message = str(err)
    assert "turbo" in message
    assert "Machine(engine=...)" in message
    for tier in ENGINES:
        assert tier in message


def test_unknown_engine_env_var_raises_typed_error(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
    with pytest.raises(EngineSelectionError) as excinfo:
        Machine()
    message = str(excinfo.value)
    assert "warp" in message
    assert ENGINE_ENV_VAR in message
    for tier in ENGINES:
        assert tier in message


def test_engine_env_var_selects_block(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "block")
    assert Machine().engine == "block"


def test_explicit_engine_wins_over_env(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
    assert Machine(engine="block").engine == "block"


# ----------------------------------------------------------------------
# Compiled-unit machinery
# ----------------------------------------------------------------------


def _run(engine, max_cycles=200_000):
    machine = Machine(engine=engine)
    process = machine.create_process("blk")
    process.load_module(compile_source(SOURCE, "blk"))
    process.start()
    machine.run(max_cycles=max_cycles)
    return machine, process


def test_block_table_built_lazily_on_first_run():
    machine = Machine(engine="block")
    process = machine.create_process("lazy")
    loaded = process.load_module(compile_source(SOURCE, "lazy"))
    assert loaded.block_table is None
    process.start()
    machine.run(max_cycles=200_000)
    assert loaded.block_table, "execution should compile at least one unit"
    for count, fn in loaded.block_table.values():
        assert count >= 2
        assert callable(fn)


def test_block_engine_matches_reference_output():
    _, ref = _run("reference")
    _, blk = _run("block")
    assert blk.output == ref.output
    assert blk.exit_code == ref.exit_code


def test_refresh_decode_cache_drops_block_table():
    machine = Machine(engine="block")
    process = machine.create_process("refresh")
    loaded = process.load_module(compile_source(SOURCE, "refresh"))
    process.start()
    machine.run(max_cycles=200_000)
    assert loaded.block_table
    loaded.refresh_decode_cache()
    assert loaded.block_table is None


def test_slice_boundaries_identical_across_engines():
    """run_thread_slice consumes exactly the same instruction counts on
    every tier — the invariant replay's forced scheduler depends on."""
    counts = {}
    for engine in ENGINES:
        machine = Machine(engine=engine)
        process = machine.create_process("slice")
        process.load_module(compile_source(SOURCE, "slice"))
        process.start()
        thread = next(iter(process.threads.values()))
        seen = []
        # Deliberately awkward slice sizes: units (<= 20 instructions)
        # must never straddle a boundary.
        for chunk in [1, 3, 7, 40, 13, 1, 1, 40, 5, 40, 40, 40]:
            before = thread.instructions
            machine.run_thread_slice(thread, chunk)
            seen.append(thread.instructions - before)
            if not thread.runnable():
                break
        counts[engine] = (seen, thread.pc, list(thread.regs))
    assert counts["block"] == counts["reference"]
    assert counts["fast"] == counts["reference"]
