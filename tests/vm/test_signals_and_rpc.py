"""Signal delivery/interposition hooks, kill -9, and local RPC."""

from repro.isa import assemble
from repro.vm import (
    ExcCode,
    ExitState,
    Machine,
    ProcessHooks,
    Signal,
)

LOOP_FOREVER = """
.module t
.entry main
.func main
spin:
  br spin
.endfunc
"""


def build(machine: Machine, src: str, name: str = "t", start: bool = True):
    process = machine.create_process(name)
    process.load_module(assemble(src))
    if start:
        process.start()
    return process


def test_fatal_signal_default_action():
    machine = Machine()
    process = build(machine, LOOP_FOREVER)
    machine.run(max_cycles=500)
    process.post_signal(Signal.TERM)
    machine.run(max_cycles=2_000)
    assert process.exit_state == ExitState.SIGNALED
    assert process.exit_code == Signal.TERM


def test_signal_hook_runs_before_default_action():
    seen = []

    class Watcher(ProcessHooks):
        def signal(self, thread, signum):
            seen.append(signum)

    machine = Machine()
    process = build(machine, LOOP_FOREVER)
    process.hooks.add(Watcher())
    machine.run(max_cycles=500)
    process.post_signal(Signal.INT)
    machine.run(max_cycles=2_000)
    assert seen == [Signal.INT]


def test_guest_signal_handler_runs_and_resumes():
    machine = Machine()
    process = build(
        machine,
        """
        .module t
        .entry main
        .func main
          li r0, 15
          la r1, handler
          sys 18            ; signal(SIGTERM, handler)
          la r2, flag
        wait:
          ldw r0, r2, 0
          bz r0, wait
          sys 1
          halt
        .endfunc
        .func handler
          la r2, flag
          li r0, 1
          stw r0, r2, 0
          ret
        .endfunc
        .data
        flag: .word 0
        """,
    )
    machine.run(max_cycles=500)
    process.post_signal(Signal.TERM)
    machine.run(max_cycles=100_000)
    assert process.exit_state == ExitState.EXITED
    assert process.output == ["1"]


def test_signal_return_hook_fires():
    events = []

    class Watcher(ProcessHooks):
        def signal_return(self, thread, signum):
            events.append(signum)

    machine = Machine()
    process = build(
        machine,
        """
        .module t
        .entry main
        .func main
          li r0, 15
          la r1, handler
          sys 18
          la r2, flag
        wait:
          ldw r0, r2, 0
          bz r0, wait
          halt
        .endfunc
        .func handler
          la r2, flag
          li r0, 1
          stw r0, r2, 0
          ret
        .endfunc
        .data
        flag: .word 0
        """,
    )
    process.hooks.add(Watcher())
    machine.run(max_cycles=500)
    process.post_signal(Signal.TERM)
    machine.run(max_cycles=100_000)
    assert events == [Signal.TERM]


def test_kill_nine_runs_no_hooks():
    calls = []

    class Watcher(ProcessHooks):
        def signal(self, thread, signum):
            calls.append("signal")

        def thread_exited(self, thread):
            calls.append("exit")

        def process_exit(self, process, code):
            calls.append("pexit")

    machine = Machine()
    process = build(machine, LOOP_FOREVER)
    process.hooks.add(Watcher())
    machine.run(max_cycles=500)
    process.post_signal(Signal.KILL)
    assert process.exit_state == ExitState.KILLED
    assert calls == []


def test_mapped_buffer_survives_kill():
    machine = Machine()
    process = build(machine, LOOP_FOREVER)
    base, mapped = process.map_buffer("trace", 8)
    process.memory.write_block(base, [1, 2, 3])
    process.post_signal(Signal.KILL)
    assert mapped.words[:3] == [1, 2, 3]


SERVER = """
.module server
.export handle
.func handle
  ; handler(arg_addr=r0, arg_len=r1, ret_addr=r2, ret_cap=r3)
  ldw r4, r0, 0
  muli r4, r4, 2
  stw r4, r2, 0
  li r0, 0
  ret
.endfunc
"""

CLIENT = """
.module client
.entry main
.func main
  li r0, 41
  la r1, argbuf
  stw r0, r1, 0
  li r0, 7           ; service id
  li r2, 1           ; arg len
  la r3, retbuf
  li r4, 1           ; ret capacity
  sys 14             ; rpc_call
  sys 1              ; print status
  la r3, retbuf
  ldw r0, r3, 0
  sys 1              ; print doubled value
  halt
.endfunc
.data
argbuf: .word 0
retbuf: .word 0
"""


def test_local_rpc_round_trip():
    machine = Machine()
    server = build(machine, SERVER, "server", start=False)
    server.rpc_services[7] = "handle"
    client = build(machine, CLIENT, "client")
    machine.run(max_cycles=1_000_000)
    assert client.output == ["0", "82"]
    assert server.alive  # the server process keeps running / stays loaded


FAULTY_SERVER = """
.module server
.export handle
.func handle
  li r1, 0
  li r2, 3
  div r0, r2, r1     ; server-side crash
  ret
.endfunc
"""


def test_server_fault_becomes_rpc_server_fault_status():
    """Figure 6 shape: the server faults; the client sees a status code
    and keeps running."""
    machine = Machine()
    server = build(machine, FAULTY_SERVER, "server", start=False)
    server.rpc_services[7] = "handle"
    client = build(machine, CLIENT, "client")
    machine.run(max_cycles=1_000_000)
    assert client.output[0] == str(ExcCode.RPC_SERVER_FAULT)
    assert client.exit_state == ExitState.EXITED
    assert server.alive


def test_rpc_to_unknown_service_fails_cleanly():
    machine = Machine()
    client = build(machine, CLIENT, "client")
    machine.run(max_cycles=1_000_000)
    assert client.output[0] == str(ExcCode.RPC_SERVER_FAULT)
