"""Differential execution: the fast engine must be bit-identical to the
reference interpreter.

The predecoded dispatch engine (:mod:`repro.vm.dispatch`) is only
admissible if no program can tell it apart from ``Machine.step()``.
These tests run the same module under both engines and compare the
*complete* architectural outcome: final registers, TLS, memory contents,
trace-buffer words, exception codes and PCs, cycle and instruction
counts, and program output.

Coverage comes from two directions:

* every MiniC example/scenario program in the repo, bare and
  instrumented (probes, runtime host calls, buffer wraps, exception
  upcalls);
* seeded random instruction sequences that deliberately wander into
  fault paths (divide by zero, wild loads, THROW, stack over-pop) so the
  faulting side effects and unwinder entry points are compared too.
"""

from __future__ import annotations

import random

import pytest

from repro.instrument import InstrumentConfig, instrument_module
from repro.isa.encoding import encode_all
from repro.isa.instructions import Instr, Op
from repro.isa.module import FuncInfo, HandlerRange, Module
from repro.lang.minic import compile_source
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.vm import ENGINES, Machine, Sys

# ----------------------------------------------------------------------
# State capture and comparison
# ----------------------------------------------------------------------


def _capture(machine, process, status, runtime=None):
    """Everything observable about a finished (or stopped) run."""
    state = {
        "status": status,
        "cycles": machine.cycles,
        "exit_state": process.exit_state,
        "exit_code": process.exit_code,
        "output": list(process.output),
        "fault": (
            (process.fault.code, process.fault.pc, process.fault.detail)
            if process.fault
            else None
        ),
        "threads": {
            tid: {
                "state": thread.state,
                "pc": thread.pc,
                "regs": list(thread.regs),
                "tls": list(thread.tls),
                "instructions": thread.instructions,
                "frames": [
                    (f.entry_pc, f.return_pc, f.entry_sp) for f in thread.frames
                ],
            }
            for tid, thread in process.threads.items()
        },
        "memory": {
            seg.name: list(seg.words) for seg in process.memory.segments()
        },
    }
    if runtime is not None:
        state["buffers"] = [
            buf.mapped.snapshot() for buf in runtime._all_buffers
        ]
        state["records_written"] = runtime.stats.records_written
        state["wraps"] = runtime.stats.wraps
    return state


def _run_module(make_module, engine, *, instrument=None, max_cycles=5_000_000):
    """Build a fresh module, run it on ``engine``, capture final state."""
    machine = Machine(engine=engine)
    process = machine.create_process("diff")
    runtime = None
    module = make_module()
    if instrument is not None:
        runtime = TraceBackRuntime(process, RuntimeConfig())
        module = instrument_module(module, InstrumentConfig(mode=instrument)).module
    process.load_module(module)
    process.start()
    status = machine.run(max_cycles=max_cycles)
    return _capture(machine, process, status, runtime)


def assert_engines_agree(make_module, *, instrument=None, max_cycles=5_000_000):
    """Run under every engine and require identical captured state."""
    states = {
        engine: _run_module(
            make_module, engine, instrument=instrument, max_cycles=max_cycles
        )
        for engine in ENGINES
    }
    reference = states["reference"]
    for engine, state in states.items():
        assert state == reference, f"engine {engine!r} diverged from reference"
    return reference


# ----------------------------------------------------------------------
# MiniC example and scenario programs
# ----------------------------------------------------------------------


def _example_sources():
    """Every self-contained MiniC program shipped with the repo."""
    import importlib.util
    from pathlib import Path

    examples = Path(__file__).resolve().parents[2] / "examples"

    def load(name):
        spec = importlib.util.spec_from_file_location(name, examples / f"{name}.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    from repro.workloads import scenarios

    return {
        "quickstart": load("quickstart").SOURCE,
        "multithreaded": load("multithreaded_crash").SERVER,
        "deadlock": load("hang_diagnosis").DEADLOCK,
        "fidelity": scenarios.FIDELITY_C,
        "oracle": scenarios.ORACLE_C,
    }


SOURCES = _example_sources()


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_examples_bare(name):
    """Each example program, uninstrumented, is engine-independent."""
    source = SOURCES[name]
    assert_engines_agree(
        lambda: compile_source(source, name), max_cycles=500_000
    )


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_examples_instrumented(name):
    """Each example under full tracing: probes, host calls, wraps,
    exception upcalls, and the trace-buffer words themselves match."""
    source = SOURCES[name]
    assert_engines_agree(
        lambda: compile_source(source, name),
        instrument="native",
        max_cycles=500_000,
    )


def test_quickstart_il_mode():
    """IL mode adds bounds checks and the CATCH import path."""
    assert_engines_agree(
        lambda: compile_source(SOURCES["quickstart"], "qs-il", bounds_checks=True),
        instrument="il",
        max_cycles=500_000,
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "bench", [b.name for b in __import__("repro.workloads.specint", fromlist=["suite"]).suite()]
)
def test_specint_differential(bench):
    """The full specint workload suite agrees across engines (slow lane)."""
    from repro.workloads.specint import suite

    source = next(b for b in suite() if b.name == bench).source
    assert_engines_agree(lambda: compile_source(source, bench))


# ----------------------------------------------------------------------
# Seeded random instruction sequences
# ----------------------------------------------------------------------

_ALU_R3 = [
    Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR, Op.SLT, Op.SLE, Op.SEQ, Op.SNE,
]
_ALU_SIGNED_I = [Op.ADDI, Op.MULI, Op.SLTI, Op.SHLI, Op.SHRI]
_ALU_UNSIGNED_I = [Op.ANDI, Op.ORI, Op.XORI]
_COND_BRANCH_1 = [Op.BZ, Op.BNZ]
_COND_BRANCH_2 = [Op.BEQ, Op.BNE, Op.BLT, Op.BGE]
_SAFE_SYS = [Sys.PRINT_INT, Sys.CLOCK, Sys.RAND, Sys.GETTID, Sys.YIELD]

_N_INIT = 8  # MOVI r0..r7 seeds the register file


def _random_body(rng, n_body, body_start, body_end):
    """One random instruction for each body slot.

    Branches are forward-only (into ``(here, body_end]``) so every
    program terminates without needing a cycle cap; fault opportunities
    (DIV by zero, wild loads, THROW, over-POP) are deliberately common
    so the comparison exercises the unwinder and faulting side-effect
    order, not just straight-line arithmetic.
    """
    body = []
    for i in range(n_body):
        here = body_start + i
        kind = rng.choices(
            [
                "alu_r", "alu_si", "alu_ui", "movi", "movhi", "mov",
                "div", "push", "pop", "stack_st", "stack_ld",
                "wild_ld", "branch1", "branch2", "br", "call",
                "tls", "sys", "throw",
            ],
            weights=[
                18, 10, 6, 8, 3, 5,
                5, 6, 5, 4, 4,
                2, 5, 5, 3, 4,
                4, 4, 1,
            ],
        )[0]
        reg = lambda: rng.randrange(0, 11)  # r11/r12 reserved (probe/sp)
        if kind == "alu_r":
            body.append(Instr(rng.choice(_ALU_R3), rd=reg(), rs=reg(), rt=reg()))
        elif kind == "alu_si":
            body.append(
                Instr(rng.choice(_ALU_SIGNED_I), rd=reg(), rs=reg(),
                      imm=rng.randint(-512, 512))
            )
        elif kind == "alu_ui":
            body.append(
                Instr(rng.choice(_ALU_UNSIGNED_I), rd=reg(), rs=reg(),
                      imm=rng.randint(0, 0xFFFF))
            )
        elif kind == "movi":
            body.append(Instr(Op.MOVI, rd=reg(), imm=rng.randint(-32768, 32767)))
        elif kind == "movhi":
            body.append(Instr(Op.MOVHI, rd=reg(), imm=rng.randint(0, 0xFFFF)))
        elif kind == "mov":
            body.append(Instr(Op.MOV, rd=reg(), rs=reg()))
        elif kind == "div":
            # rt is often zero-valued: DIVIDE_BY_ZERO -> handler.
            body.append(
                Instr(rng.choice([Op.DIV, Op.MOD]), rd=reg(), rs=reg(), rt=reg())
            )
        elif kind == "push":
            body.append(Instr(Op.PUSH, rd=reg()))
        elif kind == "pop":
            # May over-pop past the trampoline RA and eventually walk off
            # the stack segment -> ACCESS_VIOLATION -> handler.
            body.append(Instr(Op.POP, rd=reg()))
        elif kind == "stack_st":
            body.append(Instr(Op.STW, rd=reg(), rs=12, imm=-rng.randint(1, 4)))
        elif kind == "stack_ld":
            body.append(Instr(Op.LDW, rd=reg(), rs=12, imm=-rng.randint(1, 4)))
        elif kind == "wild_ld":
            # Address from a data register: usually unmapped -> fault.
            body.append(Instr(Op.LDW, rd=reg(), rs=reg(), imm=rng.randint(-8, 8)))
        elif kind == "branch1":
            target = rng.randint(here + 1, body_end)
            body.append(
                Instr(rng.choice(_COND_BRANCH_1), rd=reg(), imm=target - (here + 1))
            )
        elif kind == "branch2":
            target = rng.randint(here + 1, body_end)
            body.append(
                Instr(rng.choice(_COND_BRANCH_2), rd=reg(), rs=reg(),
                      imm=target - (here + 1))
            )
        elif kind == "br":
            target = rng.randint(here + 1, body_end)
            body.append(Instr(Op.BR, imm=target - (here + 1)))
        elif kind == "call":
            body.append(Instr(Op.CALL, imm=0))  # patched to leaf below
        elif kind == "tls":
            op = rng.choice([Op.TLSST, Op.TLSLD])
            body.append(Instr(op, rd=reg(), imm=rng.randrange(0, 8)))
        elif kind == "sys":
            body.append(Instr(Op.SYS, imm=rng.choice(_SAFE_SYS)))
        elif kind == "throw":
            body.append(Instr(Op.THROW, rd=reg()))
    return body


def random_program(seed: int) -> Module:
    """A terminating random module: register init, random body, an
    epilogue that prints live registers, a catch-all handler, and a leaf
    function reachable by CALL."""
    rng = random.Random(seed)
    n_body = rng.randint(24, 72)
    body_end = _N_INIT + n_body  # epilogue offset

    instrs = [
        Instr(Op.MOVI, rd=r, imm=rng.randint(-300, 300)) for r in range(_N_INIT)
    ]
    instrs += _random_body(rng, n_body, _N_INIT, body_end)

    # Epilogue: print r1..r3 (data flow check), exit with r0's low bits.
    for r in (1, 2, 3):
        instrs.append(Instr(Op.MOV, rd=0, rs=r))
        instrs.append(Instr(Op.SYS, imm=Sys.PRINT_INT))
    instrs.append(Instr(Op.ANDI, rd=0, rs=0, imm=0xFF))
    instrs.append(Instr(Op.HALT))

    handler = len(instrs)  # catch-all: print the code, halt with it.
    instrs.append(Instr(Op.SYS, imm=Sys.PRINT_INT))
    instrs.append(Instr(Op.HALT))

    leaf = len(instrs)
    instrs.append(Instr(Op.ADDI, rd=0, rs=0, imm=7))
    instrs.append(Instr(Op.RET))
    end = len(instrs)

    # Point every CALL at the leaf.
    for off, instr in enumerate(instrs):
        if instr.op is Op.CALL:
            instrs[off] = Instr(Op.CALL, imm=leaf - (off + 1))

    return Module(
        name=f"rand{seed}",
        code=encode_all(instrs),
        exports={"main": 0},
        funcs=[
            FuncInfo(
                name="main",
                start=0,
                end=leaf,
                handlers=[HandlerRange(start=0, end=handler, handler=handler)],
            ),
            FuncInfo(name="leaf", start=leaf, end=end),
        ],
    )


@pytest.mark.parametrize("seed", range(120))
def test_random_programs(seed):
    """120 seeded random instruction sequences agree across engines."""
    state = assert_engines_agree(
        lambda: random_program(seed), max_cycles=100_000
    )
    # Forward-only branches guarantee termination: no run hits the cap.
    assert state["status"] == "done"


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_random_programs_instrumented(seed):
    """A sample of the random programs under full instrumentation."""
    assert_engines_agree(
        lambda: random_program(seed), instrument="native", max_cycles=200_000
    )
