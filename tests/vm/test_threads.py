"""Threads, scheduling, locks, sleep, and hang detection."""

from repro.isa import assemble
from repro.vm import ExitState, Machine, ProcessHooks, ThreadState


def build(src: str):
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(assemble(src))
    process.start()
    return machine, process


def test_thread_create_runs_concurrently():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          la r0, worker
          li r1, 5
          sys 11            ; thread_create(worker, 5)
          li r2, 40000
        spin:
          addi r2, r2, -1
          bnz r2, spin
          la r1, done
          ldw r0, r1, 0
          sys 1
          halt
        .endfunc
        .func worker
          sys 20            ; arg already in r0
          muli r0, r0, 10
          la r1, done
          stw r0, r1, 0
          li r0, 0
          sys 4             ; exit_thread
        .endfunc
        .data
        done: .word 0
        """
    )
    machine.run()
    assert process.exit_state == ExitState.EXITED
    assert process.output == ["50"]


def test_lock_provides_mutual_exclusion():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          la r0, worker
          li r1, 0
          sys 11
          la r0, worker
          sys 11
          li r2, 120000
        wait:
          la r1, count
          ldw r0, r1, 0
          li r3, 20000
          beq r0, r3, okdone
          addi r2, r2, -1
          bnz r2, wait
        okdone:
          la r1, count
          ldw r0, r1, 0
          sys 1
          halt
        .endfunc
        .func worker
          li r4, 10000
        loop:
          li r0, 1
          sys 12            ; lock(1)
          la r1, count
          ldw r2, r1, 0
          addi r2, r2, 1
          stw r2, r1, 0
          li r0, 1
          sys 13            ; unlock(1)
          addi r4, r4, -1
          bnz r4, loop
          li r0, 0
          sys 4
        .endfunc
        .data
        count: .word 0
        """
    )
    machine.run(max_cycles=10_000_000)
    assert process.output == ["20000"]


def test_deadlock_reports_stalled():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          la r0, worker
          sys 11
          li r0, 1
          sys 12            ; main takes lock 1
          li r0, 100
          sys 8             ; sleep so the worker takes lock 2
          li r0, 2
          sys 12            ; main wants lock 2 -> deadlock
          halt
        .endfunc
        .func worker
          li r0, 2
          sys 12            ; worker takes lock 2
          li r0, 200
          sys 8
          li r0, 1
          sys 12            ; worker wants lock 1 -> deadlock
          li r0, 0
          sys 4
        .endfunc
        """
    )
    status = machine.run(max_cycles=1_000_000)
    assert status == "stalled"
    blocked = [t for t in process.threads.values() if t.state is ThreadState.BLOCKED]
    assert len(blocked) == 2


def test_sleep_fast_forwards_idle_clock():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          li r0, 500000
          sys 8
          halt
        .endfunc
        """
    )
    assert machine.run() == "done"
    # The clock advanced past the sleep without executing 500k instrs.
    assert machine.cycles >= 500_000
    assert process.threads[0].instructions < 100


def test_thread_exit_hook_and_exit_code():
    exits = []

    class Watcher(ProcessHooks):
        def thread_exited(self, thread):
            exits.append((thread.tid, thread.exit_code))

    machine, process = build(
        """
        .module t
        .entry main
        .func main
          la r0, worker
          li r1, 9
          sys 11
          li r0, 1000
          sys 8
          halt
        .endfunc
        .func worker
          li r0, 7
          sys 4
        .endfunc
        """
    )
    process.hooks.add(Watcher())
    machine.run()
    assert (1, 7) in exits


def test_entry_function_return_ends_thread():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          la r0, worker
          sys 11
          li r0, 2000
          sys 8
          halt
        .endfunc
        .func worker
          li r0, 13
          ret               ; return from entry function = thread exit
        .endfunc
        """
    )
    machine.run()
    assert process.threads[1].exit_code == 13


def test_yield_does_not_break_execution():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          li r1, 3
        loop:
          sys 15
          addi r1, r1, -1
          bnz r1, loop
          li r0, 1
          sys 1
          halt
        .endfunc
        """
    )
    machine.run()
    assert process.output == ["1"]


def test_gettid_distinguishes_threads():
    machine, process = build(
        """
        .module t
        .entry main
        .func main
          sys 17
          sys 1
          halt
        .endfunc
        """
    )
    machine.run()
    assert process.output == ["0"]
