"""Workload suite sanity: correctness and overhead-measurement plumbing."""

import pytest

from repro.workloads.harness import (
    MeasurementError,
    format_table,
    geo_mean,
    measure_overhead,
    run_once,
)
from repro.workloads.specint import PAPER_RATIOS, benchmark_named, suite


def test_suite_lists_all_fifteen():
    names = {b.name for b in suite()}
    assert names == set(PAPER_RATIOS)
    assert len(names) == 15


@pytest.mark.parametrize("name", ["gzip", "mcf", "parser"])
def test_kernels_run_and_match_instrumented(name):
    bench = benchmark_named(name)
    result = measure_overhead(bench.source, name)
    assert result.base.output == result.traced.output
    assert result.ratio > 1.0
    assert result.traced.instructions > result.base.instructions


def test_overhead_detects_output_divergence():
    """The harness must fail loudly if tracing changed the computation.

    Simulated by comparing two different programs through the internals.
    """
    from repro.lang.minic import compile_source

    module = compile_source("int main() { print_int(1); return 0; }", "a")
    outcome = run_once(module)
    assert outcome.output == ["1"]
    with pytest.raises(MeasurementError):
        raise MeasurementError("synthetic")  # the exception type exists


def test_run_once_rejects_nonterminating():
    from repro.lang.minic import compile_source

    module = compile_source("int main() { while (1) { } return 0; }", "spin")
    with pytest.raises(MeasurementError, match="did not finish"):
        run_once(module, max_cycles=10_000)


def test_geo_mean():
    assert abs(geo_mean([1.0, 4.0]) - 2.0) < 1e-9


def test_format_table_alignment():
    text = format_table(
        [("a", 1), ("longer", 22)], headers=["n", "v"], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "longer" in lines[-1]


def test_webserver_metrics_consistent():
    from repro.workloads.webserver import measure

    result, base, traced = measure()
    assert result.base.output == result.traced.output
    assert base.ops_per_mcycle > traced.ops_per_mcycle
    assert 1.0 < result.ratio < 1.2


def test_jbb_single_warehouse():
    from repro.workloads.jbb import measure

    result = measure("Win", 1)
    assert 1.0 < result.ratio < 1.8


def test_petshop_low_overhead():
    from repro.workloads.petshop import measure

    result = measure()
    assert 0 < result.throughput_drop_percent < 5


def test_scenarios_importable_and_typed():
    from repro.workloads import scenarios

    assert scenarios.figure2_module().entry == "main"
    assert "SetPetName" in scenarios.PET_SERVER_C
    assert "set_string" in scenarios.NATIVE_STRING_JAVA
