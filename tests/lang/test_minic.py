"""MiniC: lexer, parser, and compiled-program semantics."""

import pytest

from repro.lang.minic import (
    CompileError,
    LexError,
    ParseError,
    compile_source,
    compile_to_asm,
    parse,
    tokenize,
)
from repro.vm import ExcCode, ExitState, Machine


def run(src: str, max_cycles: int = 20_000_000):
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(compile_source(src, "t"))
    process.start()
    status = machine.run(max_cycles=max_cycles)
    return process, status


def outputs(src: str) -> list[str]:
    process, status = run(src)
    assert status == "done", f"status={status}, state={process.exit_state}"
    assert process.exit_state == ExitState.EXITED
    return process.output


# ----------------------------------------------------------------------
# Lexer / parser
# ----------------------------------------------------------------------
def test_tokenize_basics():
    tokens = tokenize("int x = 0x10; // comment\n")
    kinds = [t.kind for t in tokens]
    assert kinds == ["int", "ident", "=", "int", ";", "eof"]
    assert tokens[3].value == 16


def test_tokenize_string_and_char():
    tokens = tokenize('"a\\nb" \'x\'')
    assert tokens[0].value == "a\nb"
    assert tokens[1].value == ord("x")


def test_tokenize_rejects_garbage():
    with pytest.raises(LexError):
        tokenize("int @ x;")


def test_parse_error_reports_line():
    with pytest.raises(ParseError, match="line 2"):
        parse("int main() {\n    int 5;\n}")


def test_parse_program_shape():
    program = parse(
        """
        extern int remote(int a, int b);
        const int table[2] = {1, 2};
        int g = 5;
        int main() { return 0; }
        """
    )
    assert program.externs[0].name == "remote"
    assert program.externs[0].arity == 2
    assert program.globals[0].const
    assert program.globals[1].init_values == [5]
    assert program.functions[0].name == "main"


def test_compile_to_asm_contains_line_markers():
    asm = compile_to_asm("int main() {\n    return 1;\n}\n", "m", "m.c")
    assert ".line m.c 2" in asm


# ----------------------------------------------------------------------
# Semantics
# ----------------------------------------------------------------------
def test_arithmetic_precedence():
    assert outputs("int main() { print_int(2 + 3 * 4); return 0; }") == ["14"]


def test_parentheses_override():
    assert outputs("int main() { print_int((2 + 3) * 4); return 0; }") == ["20"]


def test_unary_minus_and_not():
    assert outputs(
        "int main() { print_int(-5); print_int(!0); print_int(!7); return 0; }"
    ) == ["-5", "1", "0"]


def test_division_and_modulo():
    assert outputs(
        "int main() { print_int(-7 / 2); print_int(7 % 3); return 0; }"
    ) == ["-3", "1"]


def test_comparisons():
    assert outputs(
        """int main() {
            print_int(1 < 2); print_int(2 <= 1);
            print_int(3 > 2); print_int(2 >= 3);
            print_int(4 == 4); print_int(4 != 4);
            return 0; }"""
    ) == ["1", "0", "1", "0", "1", "0"]


def test_bitwise_and_shifts():
    assert outputs(
        """int main() {
            print_int(6 & 3); print_int(6 | 1); print_int(6 ^ 3);
            print_int(1 << 4); print_int(32 >> 2);
            return 0; }"""
    ) == ["2", "7", "5", "16", "8"]


def test_short_circuit_and():
    src = """
int touched = 0;
int side() { touched = 1; return 1; }
int main() {
    int r;
    r = 0 && side();
    print_int(r);
    print_int(touched);
    return 0;
}
"""
    assert outputs(src) == ["0", "0"]


def test_short_circuit_or():
    src = """
int touched = 0;
int side() { touched = 1; return 0; }
int main() {
    print_int(1 || side());
    print_int(touched);
    return 0;
}
"""
    assert outputs(src) == ["1", "0"]


def test_while_and_break_continue():
    src = """int main() {
    int i;
    int total;
    i = 0;
    total = 0;
    while (1) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        if (i > 9) { break; }
        total = total + i;
    }
    print_int(total);
    return 0;
}
"""
    assert outputs(src) == ["25"]  # 1+3+5+7+9


def test_for_with_declaration_init():
    src = """int main() {
    int total;
    total = 0;
    for (int i = 1; i <= 4; i = i + 1) {
        total = total + i;
    }
    print_int(total);
    return 0;
}
"""
    assert outputs(src) == ["10"]


def test_nested_function_calls():
    src = """
int square(int x) { return x * x; }
int add(int a, int b) { return a + b; }
int main() {
    print_int(add(square(3), square(4)));
    return 0;
}
"""
    assert outputs(src) == ["25"]


def test_recursion_ackermann_small():
    src = """
int ack(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
int main() { print_int(ack(2, 3)); return 0; }
"""
    assert outputs(src) == ["9"]


def test_local_arrays():
    src = """int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i = i + 1) { a[i] = i * 10; }
    print_int(a[3]);
    return 0;
}
"""
    assert outputs(src) == ["30"]


def test_global_arrays_and_init():
    src = """
int table[4] = {10, 20, 30, 40};
int main() { print_int(table[2]); return 0; }
"""
    assert outputs(src) == ["30"]


def test_global_string_and_print_str():
    src = """
int main() { print_str("hello world"); return 0; }
"""
    assert outputs(src) == ["hello world"]


def test_const_global_write_faults():
    """The Figure 6 shape: writing through a const is an access violation."""
    src = """
const int name[4] = {82, 101, 120, 0};
int main() {
    name[0] = 77;
    return 0;
}
"""
    process, _ = run(src)
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.ACCESS_VIOLATION


def test_try_catch_throw():
    src = """int main() {
    int e;
    try {
        throw 123;
    } catch (e) {
        print_int(e);
    }
    return 0;
}
"""
    assert outputs(src) == ["123"]


def test_try_catch_across_call():
    src = """
int danger() { throw 55; return 0; }
int main() {
    int e;
    try { danger(); } catch (e) { print_int(e); }
    return 0;
}
"""
    assert outputs(src) == ["55"]


def test_catch_then_continue_loop():
    src = """int main() {
    int i;
    int e;
    int count;
    count = 0;
    for (i = 0; i < 4; i = i + 1) {
        try { throw i + 1; } catch (e) { count = count + e; }
    }
    print_int(count);
    return 0;
}
"""
    assert outputs(src) == ["10"]


def test_peek_poke_round_trip():
    src = """
int cell[2];
int main() {
    poke(cell, 41);
    print_int(peek(cell) + 1);
    return 0;
}
"""
    assert outputs(src) == ["42"]


def test_builtin_rand_deterministic():
    src = "int main() { print_int(rand() == rand()); return 0; }"
    assert outputs(src) == ["0"]


def test_function_value_for_thread_create():
    src = """
int done[1];
int worker(int arg) {
    done[0] = arg + 1;
    exit_thread(0);
    return 0;
}
int main() {
    thread_create(worker, 41);
    sleep(100000);
    print_int(done[0]);
    return 0;
}
"""
    assert outputs(src) == ["42"]


def test_bounds_checks_off_by_default():
    src = """
int a[2];
int pad[8];
int main() { a[3] = 9; print_int(pad[1]); return 0; }
"""
    process, _ = run(src)
    # Without checks, the write lands in a neighbouring global (the
    # memcpy-overrun corruption shape from §6.1's Fidelity story).
    assert process.exit_state == ExitState.EXITED


def test_bounds_checks_in_il_mode():
    module = compile_source(
        "int a[2];\nint main() { a[5] = 1; return 0; }", "t",
        bounds_checks=True,
    )
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(module)
    process.start()
    machine.run(max_cycles=1_000_000)
    assert process.exit_state == ExitState.FAULTED
    assert process.fault.code == ExcCode.ARRAY_BOUNDS


# ----------------------------------------------------------------------
# Compile errors
# ----------------------------------------------------------------------
def test_unknown_variable_rejected():
    with pytest.raises(CompileError, match="unknown"):
        compile_source("int main() { print_int(nope); return 0; }")


def test_unknown_function_rejected():
    with pytest.raises(CompileError, match="unknown function"):
        compile_source("int main() { missing(); return 0; }")


def test_builtin_arity_checked():
    with pytest.raises(CompileError, match="wants"):
        compile_source("int main() { sleep(); return 0; }")


def test_break_outside_loop_rejected():
    with pytest.raises(CompileError, match="break"):
        compile_source("int main() { break; return 0; }")


def test_assign_to_array_rejected():
    with pytest.raises(CompileError):
        compile_source("int main() { int a[2]; a = 5; return 0; }")


def test_too_many_params_rejected():
    with pytest.raises(CompileError, match="parameters"):
        compile_source(
            "int f(int a, int b, int c, int d, int e, int f, int g) "
            "{ return 0; }"
        )


def test_redefining_builtin_rejected():
    with pytest.raises(CompileError, match="builtin"):
        compile_source("int sleep(int x) { return 0; }")
