"""MiniC corners: nesting, scoping, operators, code-shape invariants."""

import pytest

from repro.lang.minic import CompileError, compile_source
from repro.instrument import DagBaseError, DagBaseFile
from repro.vm import ExitState, Machine


def outputs(src: str) -> list[str]:
    machine = Machine()
    process = machine.create_process("t")
    process.load_module(compile_source(src, "t"))
    process.start()
    status = machine.run(max_cycles=30_000_000)
    assert status == "done" and process.exit_state == ExitState.EXITED, (
        status, process.exit_state, process.fault
    )
    return process.output


def test_nested_try_catch():
    src = """int main() {
    int a;
    int b;
    try {
        try {
            throw 111;
        } catch (a) {
            print_int(a);
            throw 222;
        }
    } catch (b) {
        print_int(b);
    }
    return 0;
}
"""
    assert outputs(src) == ["111", "222"]


def test_try_inside_loop_with_break():
    src = """int main() {
    int i;
    int e;
    for (i = 0; i < 10; i = i + 1) {
        try {
            if (i == 3) { throw 99; }
        } catch (e) {
            print_int(e);
            break;
        }
    }
    print_int(i);
    return 0;
}
"""
    assert outputs(src) == ["99", "3"]


def test_throw_from_deep_nesting():
    src = """
int level3() { throw 7; return 0; }
int level2() { return level3(); }
int level1() { return level2(); }
int main() {
    int e;
    try { level1(); } catch (e) { print_int(e); }
    return 0;
}
"""
    assert outputs(src) == ["7"]


def test_deeply_nested_expressions():
    src = """int main() {
    print_int(((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 + 8))) << 1) % 1000);
    return 0;
}
"""
    assert outputs(src) == [str((((3 * 7) - ((5 - 6) * 15)) << 1) % 1000)]


def test_chained_else_if():
    src = """
int classify(int x) {
    if (x < 0) { return -1; }
    else if (x == 0) { return 0; }
    else if (x < 10) { return 1; }
    else { return 2; }
}
int main() {
    print_int(classify(-5));
    print_int(classify(0));
    print_int(classify(5));
    print_int(classify(50));
    return 0;
}
"""
    assert outputs(src) == ["-1", "0", "1", "2"]


def test_anonymous_block_statement():
    src = """int main() {
    int x;
    x = 1;
    {
        x = x + 1;
    }
    print_int(x);
    return 0;
}
"""
    assert outputs(src) == ["2"]


def test_for_with_empty_clauses():
    src = """int main() {
    int i;
    i = 0;
    for (;;) {
        i = i + 1;
        if (i >= 4) { break; }
    }
    print_int(i);
    return 0;
}
"""
    assert outputs(src) == ["4"]


def test_char_literals_and_putc():
    src = """int main() {
    putc('H');
    putc('i');
    print_int('A');
    return 0;
}
"""
    assert outputs(src) == ["H", "i", "65"]


def test_global_string_indexing():
    src = """
int word[8] = "cab";
int main() {
    print_int(word[0]);
    print_int(word[2]);
    return 0;
}
"""
    assert outputs(src) == [str(ord("c")), str(ord("b"))]


def test_negative_global_initializers():
    src = """
int vals[3] = {-1, -2, 3};
int main() { print_int(vals[0] + vals[1] + vals[2]); return 0; }
"""
    assert outputs(src) == ["0"]


def test_recursion_with_local_arrays():
    """Each activation gets its own frame-allocated array."""
    src = """
int sum_digits(int n) {
    int d[1];
    if (n == 0) { return 0; }
    d[0] = n % 10;
    return d[0] + sum_digits(n / 10);
}
int main() { print_int(sum_digits(1234)); return 0; }
"""
    assert outputs(src) == ["10"]


def test_same_name_in_sibling_scopes_shares_slot():
    # MiniC has function-level scoping (like pre-C99 C): redeclaration
    # in sibling blocks reuses the slot.
    src = """int main() {
    if (1) {
        int t;
        t = 5;
        print_int(t);
    }
    if (1) {
        int t;
        t = 6;
        print_int(t);
    }
    return 0;
}
"""
    assert outputs(src) == ["5", "6"]


def test_index_on_scalar_rejected():
    with pytest.raises(CompileError, match="not an array"):
        compile_source("int main() { int x; x = 0; print_int(x[0]); return 0; }")


def test_continue_in_for_hits_step():
    src = """int main() {
    int i;
    int n;
    n = 0;
    for (i = 0; i < 6; i = i + 1) {
        if (i % 2 == 0) { continue; }
        n = n + i;
    }
    print_int(n);
    return 0;
}
"""
    assert outputs(src) == ["9"]


# ----------------------------------------------------------------------
# Dagbase allocation tool
# ----------------------------------------------------------------------
def test_dagbase_allocate_disjoint():
    dagbase = DagBaseFile()
    dagbase.allocate({"a": 10, "b": 5, "c": 20}, start=100)
    spans = sorted(
        (dagbase.bases[n], dagbase.bases[n] + size)
        for n, size in {"a": 10, "b": 5, "c": 20}.items()
    )
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1
    assert min(s for s, _ in spans) >= 100


def test_dagbase_allocate_keeps_existing():
    dagbase = DagBaseFile({"a": 500})
    dagbase.allocate({"a": 10, "b": 10})
    assert dagbase.bases["a"] == 500
    assert dagbase.bases["b"] != 500


def test_dagbase_allocate_exhaustion():
    from repro.runtime.records import MAX_DAG_ID

    dagbase = DagBaseFile()
    with pytest.raises(DagBaseError, match="exhausted"):
        dagbase.allocate({"huge": MAX_DAG_ID + 10})
