"""Property tests: MiniC expression evaluation matches C semantics.

Random expression trees are rendered to MiniC, compiled, executed on the
VM, and compared against a reference evaluator implementing 32-bit C
semantics (wrapping arithmetic, truncating division).  A second property
checks that instrumentation never changes any of these results — the
rewriter's semantic-preservation contract, fuzzed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import instrument_module
from repro.lang.minic import compile_source
from repro.runtime import TraceBackRuntime
from repro.vm import Machine

MASK = 0xFFFFFFFF


def s32(value: int) -> int:
    value &= MASK
    return value - (1 << 32) if value >= (1 << 31) else value


def c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return -r if a < 0 else r


class Expr:
    """Reference expression node: renders MiniC and evaluates itself."""

    def __init__(self, op, left=None, right=None, value=0):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "neg":
            return f"(-{self.left.render()})"
        if self.op in ("/", "%"):
            # Guard the divisor: (d | 1) is never zero.
            return (f"({self.left.render()} {self.op} "
                    f"({self.right.render()} | 1))")
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self) -> int:
        if self.op == "lit":
            return s32(self.value)
        if self.op == "neg":
            return s32(-self.left.eval())
        a = self.left.eval()
        b = self.right.eval()
        if self.op == "+":
            return s32(a + b)
        if self.op == "-":
            return s32(a - b)
        if self.op == "*":
            return s32(a * b)
        if self.op == "/":
            return s32(c_div(a, s32(b | 1)))
        if self.op == "%":
            return s32(c_mod(a, s32(b | 1)))
        if self.op == "&":
            return s32(a & b)
        if self.op == "|":
            return s32(a | b)
        if self.op == "^":
            return s32(a ^ b)
        if self.op == "<<":
            return s32((a & MASK) << (b & 31))
        if self.op == ">>":
            return s32((a & MASK) >> (b & 31))
        raise AssertionError(self.op)


def expr_strategy(depth: int = 3):
    lit = st.integers(-1000, 1000).map(lambda v: Expr("lit", value=v))
    if depth == 0:
        return lit
    sub = expr_strategy(depth - 1)
    binary = st.builds(
        lambda op, a, b: Expr(op, a, b),
        st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]),
        sub,
        sub,
    )
    shift = st.builds(
        lambda op, a, k: Expr(op, a, Expr("lit", value=k)),
        st.sampled_from(["<<", ">>"]),
        sub,
        st.integers(0, 8),
    )
    neg = st.builds(lambda a: Expr("neg", a), sub)
    return st.one_of(lit, binary, shift, neg)


def run_program(src: str, instrumented: bool) -> list[str]:
    machine = Machine()
    process = machine.create_process("t")
    module = compile_source(src, "t")
    if instrumented:
        TraceBackRuntime(process)
        module = instrument_module(module).module
    process.load_module(module)
    process.start()
    status = machine.run(max_cycles=5_000_000)
    assert status == "done", status
    return process.output


@settings(max_examples=60, deadline=None)
@given(expr_strategy())
def test_expression_matches_c_semantics(expr):
    src = f"int main() {{ print_int({expr.render()}); return 0; }}"
    assert run_program(src, instrumented=False) == [str(expr.eval())]


@settings(max_examples=30, deadline=None)
@given(expr_strategy())
def test_instrumentation_preserves_expression_results(expr):
    src = f"int main() {{ print_int({expr.render()}); return 0; }}"
    plain = run_program(src, instrumented=False)
    traced = run_program(src, instrumented=True)
    assert plain == traced
