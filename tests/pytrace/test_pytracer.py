"""The Python flight recorder: real sys.settrace, same record format."""

import threading

from repro.pytrace import PyTracer
from repro.reconstruct.model import LineStep


def _double(x):
    return x * 2


def _work(n):
    total = 0
    for i in range(n):
        total += _double(i)
    return total


def _faulty(n):
    if n == 2:
        raise KeyError("two")
    return n


def test_records_executed_lines():
    tracer = PyTracer()
    with tracer:
        assert _work(3) == 6
    (trace,) = tracer.reconstruct()
    lines = [s for s in trace.steps if isinstance(s, LineStep)]
    funcs = {s.func for s in lines}
    assert any("_work" in f for f in funcs)
    assert any("_double" in f for f in funcs)


def test_call_depth_nesting():
    tracer = PyTracer()
    with tracer:
        _work(2)
    (trace,) = tracer.reconstruct()
    work_depths = {s.depth for s in trace.line_steps() if "_work" in s.func}
    double_depths = {s.depth for s in trace.line_steps() if "_double" in s.func}
    assert max(double_depths) > max(work_depths)


def test_exception_recorded_with_location():
    tracer = PyTracer()
    try:
        with tracer:
            for i in range(5):
                _faulty(i)
    except KeyError:
        pass
    (trace,) = tracer.reconstruct()
    exceptions = trace.events("exception")
    assert exceptions
    assert exceptions[0].detail["exception"] == "KeyError"
    assert "_faulty" in exceptions[0].detail["func"]


def test_loop_iterations_visible():
    tracer = PyTracer()
    with tracer:
        _work(4)
    (trace,) = tracer.reconstruct()
    body_lines = [
        s for s in trace.line_steps() if "_double" in s.func
    ]
    assert len(body_lines) >= 4  # one per iteration


def test_ring_wraps_keep_recent_history():
    tracer = PyTracer(sub_buffers=2, sub_buffer_words=64)
    with tracer:
        _work(200)
    (trace,) = tracer.reconstruct()
    assert trace.truncated
    # The most recent steps survive: the trace ends with _work's return
    # path, not its beginning.
    lines = trace.line_steps()
    assert lines, "wrapped ring must still contain records"
    assert len(lines) < 200 * 3  # history bounded by the ring


def test_threads_get_separate_rings():
    tracer = PyTracer()
    with tracer:
        t = threading.Thread(target=_work, args=(3,))
        t.start()
        t.join()
        _work(2)
    traces = tracer.reconstruct()
    assert len(traces) >= 2
    for trace in traces:
        assert trace.line_steps()


def test_render_produces_readable_text():
    tracer = PyTracer()
    try:
        with tracer:
            _faulty(2)
    except KeyError:
        pass
    text = tracer.render()
    assert "_faulty" in text
    assert "KeyError" in text


def test_tracer_restores_previous_hook():
    import sys

    before = sys.gettrace()
    tracer = PyTracer()
    with tracer:
        pass
    assert sys.gettrace() is before


def test_flight_recorded_decorator_prints_on_crash(capsys):
    import io

    from repro.pytrace import flight_recorded

    sink = io.StringIO()

    @flight_recorded(stream=sink)
    def crashes():
        x = [1, 2]
        return x[9]

    import pytest

    with pytest.raises(IndexError):
        crashes()
    text = sink.getvalue()
    assert "flight recording of crashes" in text
    assert "IndexError" in text


def test_flight_recorded_passthrough_on_success():
    from repro.pytrace import flight_recorded

    @flight_recorded
    def fine(a, b):
        return a + b

    assert fine(2, 3) == 5
