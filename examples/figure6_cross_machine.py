"""Figure 6: cross-machine trace, C++ client and server over DCOM.

Run:  python examples/figure6_cross_machine.py

The paper's Labrador pet-store bug: the server's ``m_szPetName`` is a
const string, so ``SetPetName``'s copy faults with an access violation.
The RPC layer converts it to RPC_E_SERVERFAULT; the client "does not
properly check the returned error code", calls ``GetPetName``, and gets
the wrong (never-updated) name back.  The distributed reconstruction
fuses both machines' traces into one logical thread, with the server's
fault placed causally between the client's call and its resumption —
across machines whose clocks disagree by three million cycles.
"""

from repro.reconstruct import render_logical, select_view
from repro.workloads.scenarios import figure6_session


def main() -> None:
    session = figure6_session()
    result = session.run()

    client = session.nodes["labrador-client"].process
    server = session.nodes["labrador-server"].process
    print("network status :", result.status)
    print("client output  :", client.output, " <- the wrong name!")
    print("server state   :", server.exit_state, "(survived the fault)")
    server_snaps = session.nodes["labrador-server"].runtime.snap_store.snaps
    print("server snaps   :", [s.reason for s in server_snaps])
    print()

    trace = result.reconstruct()
    print(f"logical threads: {len(trace.logical_threads)}")
    print(f"skew estimates : {trace.skew_estimates}")
    print()

    print("=== the fused cross-machine trace ===")
    for logical in trace.logical_threads:
        print(render_logical(logical))
    print()

    print("=== server-side fault view ===")
    server_trace = next(
        p for p in trace.processes if p.process_name == "labrador-server"
    )
    print(select_view(server_trace))


if __name__ == "__main__":
    main()
