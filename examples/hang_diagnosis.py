"""Hang diagnosis: the external snap path for unresponsive processes.

Run:  python examples/hang_diagnosis.py

Two threads deadlock on a pair of locks.  The per-machine service
process notices the missed heartbeat (§3.7.5), snaps the hung process,
and the fault-directed view (§4.3.3) shows "one line per thread, to aid
the user in understanding what is blocking each thread's execution" —
the eBay-GUI story from §6.1, where a snap of a hung process was enough
to diagnose the bug remotely.
"""

from repro import TraceSession
from repro.runtime import RuntimeConfig, ServiceProcess, SnapPolicy

DEADLOCK = """
int balance_a = 100;
int balance_b = 250;

int transfer_ab(int arg) {
    lock(1);
    sleep(2000);             // widen the race window
    lock(2);                 // deadlock: main holds 2, wants 1
    balance_a = balance_a - arg;
    balance_b = balance_b + arg;
    unlock(2);
    unlock(1);
    exit_thread(0);
    return 0;
}

int main() {
    thread_create(transfer_ab, 30);
    lock(2);
    sleep(2000);
    lock(1);                 // deadlock: worker holds 1, wants 2
    balance_b = balance_b - 5;
    balance_a = balance_a + 5;
    unlock(1);
    unlock(2);
    return 0;
}
"""


def main() -> None:
    service = ServiceProcess()
    session = TraceSession(
        process_name="ledger",
        runtime_config=RuntimeConfig(policy=SnapPolicy.parse("snap on hang")),
        service=service,
    )
    session.add_minic(DEADLOCK, name="ledger", file_name="ledger.c")
    run = session.run(max_cycles=5_000_000)

    print("run status     :", run.status, "(the process is hung)")
    hung = service.poll_status()
    print("service poll   :", [r.process.name for r in hung], "missed heartbeat")
    for thread in run.process.threads.values():
        print(f"  thread {thread.tid}: blocked on {thread.block_reason}")
    print()
    print(run.view())


if __name__ == "__main__":
    main()
