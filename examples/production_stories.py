"""The paper's §6.1 production diagnoses, replayed.

Run:  python examples/production_stories.py

* **Fidelity**: "numerous calls to memcpy were overwriting allocated
  buffers and corrupting neighboring data structures" — the app crashes
  long after the corruption; the trace walks back to the overrunning
  copy loop.
* **Oracle**: "a call to sleep had been wrapped in a try/catch block.
  The argument to sleep was coming directly from a random number
  generator, which could return a negative number" — the exceptions are
  invisible in the output but the snap (with suppression keeping it to
  one artifact) pinpoints the throwing line.
"""

from repro import TraceSession
from repro.reconstruct import render_flat, render_variables
from repro.runtime import RuntimeConfig, SnapPolicy
from repro.workloads.scenarios import FIDELITY_C, fidelity_session, oracle_session


def fidelity() -> None:
    print("=" * 70)
    print("Fidelity: delayed crash from buffer-overrun corruption")
    print("=" * 70)
    # Snap with a memory dump so the variables pane shows the damage.
    session = TraceSession(
        process_name="fidelity-app",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled\ninclude memory on")
        ),
    )
    session.add_minic(FIDELITY_C, name="fidelity", file_name="feed.c")
    run = session.run()
    print("state:", run.process.exit_state, "-", run.process.fault)
    thread = run.trace().threads[-1]
    print(render_flat(thread))
    # The history shows copy_packet's loop running past the packet
    # bounds (body line 8, ten iterations on the second call) before
    # the much-later divide-by-zero: the corruption site is in the trace.
    overrun_iterations = sum(
        1 for s in thread.line_steps() if s.line == 8
    )
    print(f"\ncopy loop iterations visible in trace: {overrun_iterations}")
    # And the memory dump makes the corruption itself visible:
    # neighbor[] was {1000, 2000, 3000, 4000} at startup.
    print()
    print(render_variables(run.snap, run.mapfiles))


def oracle() -> None:
    print()
    print("=" * 70)
    print("Oracle: sleep(random) exception storm behind a try/catch")
    print("=" * 70)
    run = oracle_session().run()
    print("program output (exceptions counted by the app):", run.output)
    print("snaps taken:", run.runtime.stats.snaps,
          "| duplicates suppressed:", run.runtime.suppressor.suppressed_count)
    trace = run.trace()
    thread = trace.threads[-1]
    exceptions = thread.events("exception")
    print(f"exception records in trace: {len(exceptions)}")
    first = exceptions[0]
    print("first exception:", first.detail)
    print()
    tail = render_flat(thread).splitlines()
    print("\n".join(tail[:25]))


def main() -> None:
    fidelity()
    oracle()


if __name__ == "__main__":
    main()
