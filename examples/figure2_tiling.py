"""Figure 2: DAG tiling of a function split by an RPC call.

Run:  python examples/figure2_tiling.py

Reproduces the paper's §2.1 illustration: a six-line function with a
conditional and an RPC call.  The call return point forces a heavyweight
probe, tiling the control-flow graph into two DAGs.  The script prints
the recovered CFG, the tiling (headers / lightweight bits / implied
blocks), the instrumented disassembly, and the mapfile's DAG tables.
"""

from repro.analysis import build_cfg
from repro.instrument import instrument_module, tile
from repro.isa import disassemble
from repro.workloads.scenarios import figure2_module


def main() -> None:
    module = figure2_module()
    func = module.func_named("main")
    cfg = build_cfg(module, func)

    print("=== recovered CFG ===")
    for start in cfg.block_order():
        block = cfg.blocks[start]
        marks = []
        if block.ends_with_call:
            marks.append("ends-with-call")
        if block.ends_with_syscall:
            marks.append("ends-with-syscall (the RPC)")
        print(
            f"  block {start:3d}..{block.end:<3d} -> {block.succs} "
            f"{' '.join(marks)}"
        )

    plan = tile(cfg)
    print("\n=== DAG tiling (Figure 2) ===")
    for dag in plan.dags:
        members = []
        for block, bit in dag.members.items():
            probe = plan.block_probe[block][0]
            label = {"header": "HEAVY", "light": f"bit {bit}", "none": "implied"}[
                probe if probe != "light" else "light"
            ] if probe != "light" else f"LIGHT bit {bit}"
            members.append(f"{block}({label})")
        print(f"  DAG {dag.index}: " + ", ".join(members))
    print(f"\n  -> the RPC call forces {len(plan.dags)} DAGs, "
          "exactly as in the paper's figure")

    result = instrument_module(module)
    print("\n=== instrumented binary ===")
    print("\n".join(disassemble(result.module)))
    print(f"\nstats: {result.stats}")

    print("\n=== mapfile DAG tables (block address <-> DAG id <-> bits) ===")
    for dag in result.mapfile.dags:
        print(f"  DAG {dag.index} ({dag.func}) entry @{dag.entry}")
        for block in dag.blocks:
            lines = result.mapfile.lines_in_range(block.id, block.end)
            bit = f"bit {block.bit}" if block.bit is not None else "header/implied"
            print(f"    block @{block.id}..{block.end} [{bit}] "
                  f"lines {[l for _, l in lines]}")


if __name__ == "__main__":
    main()
