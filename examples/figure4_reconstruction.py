"""Figure 4: trace reconstruction, from raw buffer words to source lines.

Run:  python examples/figure4_reconstruction.py

Executes the Figure 2 program (with a local RPC echo server), then walks
the full §4 pipeline visibly: the raw trace-buffer words, the recovered
records, the DAG -> block -> line expansion, and the final source trace
with SYNC annotations guiding the interleave — the paper's Figure 4,
end to end.
"""

from repro.instrument import instrument_module
from repro.isa import assemble
from repro.reconstruct import (
    Reconstructor,
    mine_buffer,
    render_flat,
)
from repro.runtime import RuntimeConfig, TraceBackRuntime
from repro.vm import Machine
from repro.workloads.scenarios import figure2_module

ECHO_SERVER = """
.module echo
.export handle
.func handle
  li r0, 0
  ret
.endfunc
"""


def main() -> None:
    result = instrument_module(figure2_module())

    machine = Machine()
    process = machine.create_process("fig2")
    runtime = TraceBackRuntime(
        process, RuntimeConfig(sub_buffer_words=64, sub_buffers=2, main_buffers=1)
    )
    process.load_module(result.module)

    server = machine.create_process("echo")
    server.load_module(assemble(ECHO_SERVER))
    server.rpc_services[7] = "handle"

    process.start("fig2")
    status = machine.run(max_cycles=2_000_000)
    print(f"run: {status}, process {process.exit_state}")

    snap = runtime.snap_external("figure4-demo")

    main_buffer = next(b for b in snap.buffers if not b.flags)
    print("\n=== raw trace buffer (first sub-buffer) ===")
    for rel in range(10, 10 + 16):
        word = main_buffer.words[rel]
        if word:
            print(f"  [{rel:3d}] 0x{word:08x}")

    print("\n=== recovered records (oldest first) ===")
    for record in mine_buffer(main_buffer):
        print(f"  {record}")

    print("\n=== reconstructed source trace (Figure 4's right column) ===")
    trace = Reconstructor([result.mapfile]).reconstruct(snap)
    print(render_flat(trace.threads[0]))


if __name__ == "__main__":
    main()
