"""Quickstart: trace a crashing program and read its history.

Run:  python examples/quickstart.py

Compiles a MiniC program, instruments it with TraceBack, runs it until
it crashes, and prints the reconstructed execution history — what went
wrong and the line-by-line path that led there, without re-running
anything.
"""

from repro import trace_program

SOURCE = """
int parse_field(int raw) {
    if (raw < 0) {
        throw 100;        // malformed input
    }
    return raw % 97;
}

int checksum(int count) {
    int acc;
    int i;
    acc = 0;
    for (i = 0; i < count; i = i + 1) {
        acc = acc + parse_field(i * 13 - 20);
    }
    return acc / (count - 8);    // crashes when count == 8
}

int main() {
    int e;
    try {
        print_int(checksum(4));
    } catch (e) {
        print_int(e);
    }
    print_int(checksum(8));      // the first-fault moment
    return 0;
}
"""


def main() -> None:
    run = trace_program(SOURCE, name="quickstart")

    print("program output:", run.output)
    print("process state :", run.process.exit_state)
    print("snap reason   :", run.snap.reason if run.snap else None)
    print()
    print(run.view())
    print()
    print("--- flat history of thread 0 (most recent last) ---")
    print(run.flat_view(0))


if __name__ == "__main__":
    main()
