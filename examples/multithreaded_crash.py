"""Multi-threaded crash diagnosis: per-thread traces and the merged view.

Run:  python examples/multithreaded_crash.py

A work-queue server: three workers pull jobs and process them; job #7
carries a malformed payload that crashes its worker.  The snap taken at
the fault holds *every* thread's history: the faulting worker's path to
the bad job, and what the other workers were doing concurrently
(§4.3.2's multi-threaded trace display, ordered by timestamp probes at
the lock-protected queue).
"""

from repro import TraceSession
from repro.reconstruct import render_flat, render_multithread
from repro.runtime import RuntimeConfig, SnapPolicy

SERVER = """
int queue[32];
int head[1];
int tail[1];
int processed[1];

int push(int job) {
    lock(1);
    queue[tail[0] % 32] = job;
    tail[0] = tail[0] + 1;
    unlock(1);
    return 0;
}

int pop() {
    int job;
    lock(1);
    if (head[0] < tail[0]) {
        job = queue[head[0] % 32];
        head[0] = head[0] + 1;
    } else {
        job = -1;
    }
    unlock(1);
    return job;
}

int process(int job) {
    int payload;
    payload = job % 10;
    if (job == 7) {
        payload = 0;             // the malformed job
    } else {
        payload = payload + 1;
    }
    return 1000 / payload;       // crashes on job 7
}

int worker(int wid) {
    while (1) {
        int job;
        job = pop();
        if (job < 0) {
            sleep(500);
        } else {
            process(job);
            lock(2);
            processed[0] = processed[0] + 1;
            unlock(2);
        }
        if (processed[0] >= 12) {
            exit_thread(0);
        }
    }
    return 0;
}

int main() {
    int w;
    for (w = 0; w < 3; w = w + 1) {
        thread_create(worker, w);
    }
    int j;
    for (j = 0; j < 12; j = j + 1) {
        push(j);
        sleep(200);
    }
    sleep(200000);
    print_int(processed[0]);
    return 0;
}
"""


def main() -> None:
    session = TraceSession(
        process_name="workqueue",
        runtime_config=RuntimeConfig(
            policy=SnapPolicy.parse("snap on unhandled"),
            main_buffers=4,
            max_buffers=6,
        ),
    )
    session.add_minic(SERVER, name="server", file_name="server.c")
    run = session.run(max_cycles=20_000_000)

    print("process state:", run.process.exit_state, "-", run.process.fault)
    trace = run.trace()
    print(f"threads recovered: {[t.tid for t in trace.threads]}")
    print()

    faulting = next(t for t in trace.threads if t.events("exception"))
    print("=== the crashing worker's history (tail) ===")
    print("\n".join(render_flat(faulting).splitlines()[-12:]))
    print()

    print("=== merged multi-thread view around the fault (tail) ===")
    merged = render_multithread(trace.threads)
    print("\n".join(merged.splitlines()[-20:]))


if __name__ == "__main__":
    main()
