"""Figure 5: cross-language trace, managed code into native code.

Run:  python examples/figure5_cross_language.py

The paper's JNI bug: Java passes a string to native C code that
"only gets short strings" and allocated four characters.  The copy
overruns, corrupts a neighbouring value, and a wild access crashes —
"which would prevent an accurate stack backtrace in a standard
debugger".  The TraceBack trace still shows the flow of control from
the managed module (NativeString.java, IL-mode instrumentation) into
the native module (NativeString.c, native instrumentation), down to the
faulting line.
"""

from repro.workloads.scenarios import NATIVE_STRING_C, NATIVE_STRING_JAVA, figure5_session
from repro.reconstruct import render_flat, render_tree


def main() -> None:
    session = figure5_session()
    run = session.run(max_cycles=5_000_000)

    print("program output :", run.output)
    print("process state  :", run.process.exit_state)
    print("fault          :", run.process.fault)
    print()

    trace = run.trace()
    thread = trace.threads[-1]
    sources = {
        "NativeString.java": NATIVE_STRING_JAVA.splitlines(),
        "NativeString.c": NATIVE_STRING_C.splitlines(),
    }
    print("=== cross-language trace (both source files, one history) ===")
    print(render_flat(thread, sources=sources))

    files = {s.file for s in thread.line_steps()}
    assert files == {"NativeString.java", "NativeString.c"}, files
    print("\n=== call tree ===")
    print(render_tree(thread))


if __name__ == "__main__":
    main()
