"""Flight-record a real Python program with pytrace.

Run:  python examples/pytrace_demo.py

The same TraceBack idea applied to live Python via ``sys.settrace``:
lines stream into per-thread ring buffers in the TraceBack record
format; when the program blows up you read the history back — no
re-run, no debugger attached in advance.
"""

import threading

from repro.pytrace import PyTracer


def parse_entry(raw: str) -> int:
    name, _, value = raw.partition("=")
    return int(value)          # crashes on the malformed entry


def load_config(entries):
    settings = {}
    for raw in entries:
        key = raw.split("=")[0]
        settings[key] = parse_entry(raw)
    return settings


def background_counter(n):
    total = 0
    for i in range(n):
        total += i
    return total


def main() -> None:
    entries = ["retries=3", "timeout=30", "depth[oops", "verbose=1"]

    tracer = PyTracer()
    worker = threading.Thread(target=background_counter, args=(4,))
    try:
        with tracer:
            worker.start()
            worker.join()
            load_config(entries)
    except ValueError as exc:
        print(f"crashed: {exc!r}")

    print()
    print("=== flight recording (per thread) ===")
    print(tracer.render())

    traces = tracer.reconstruct()
    crashed = next(t for t in traces if t.events("exception"))
    last = crashed.line_steps()[-1]
    print()
    print(f"first-fault location: {last.file}:{last.line} in {last.func}")
    print(f"threads recorded: {len(traces)}")


if __name__ == "__main__":
    main()
